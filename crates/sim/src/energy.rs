//! Measured energy accounting: prices the simulator's observed activity
//! with the same component models the synthesis flow uses, giving a
//! dynamic cross-check of the analytic power numbers behind Figure 2.

use crate::stats::SimStats;
use vi_noc_core::{SynthesisConfig, Topology};
use vi_noc_models::{Bandwidth, BisyncFifoModel, LinkModel, NiModel, Power, SwitchModel};
use vi_noc_soc::SocSpec;

/// Dynamic power derived from simulated activity.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPower {
    /// Switch idle + datapath power (datapath from observed flit counts).
    pub switches: Power,
    /// Link wire power from observed per-link traffic.
    pub links: Power,
    /// Converter power on observed crossings.
    pub synchronizers: Power,
    /// NI power from observed injection/ejection.
    pub nis: Power,
}

impl MeasuredPower {
    /// The Figure-2 composition: switches + links + synchronizers.
    pub fn fig2_power(&self) -> Power {
        self.switches + self.links + self.synchronizers
    }

    /// Everything, NIs included.
    pub fn total(&self) -> Power {
        self.fig2_power() + self.nis
    }
}

/// Prices a finished simulation run.
///
/// Observed bandwidths are derived from delivered packets over elapsed
/// time, per flow, and attributed to every hop of the flow's route — the
/// same attribution the analytic [`vi_noc_core::DesignMetrics`] uses, so at
/// full CBR load the two agree up to delivery losses.
///
/// # Panics
///
/// Panics if `stats` was not produced for `topo`'s flow set, or if
/// `stats.elapsed_ps` is zero.
pub fn measured_power(
    spec: &SocSpec,
    topo: &Topology,
    cfg: &SynthesisConfig,
    stats: &SimStats,
    packet_bytes: f64,
) -> MeasuredPower {
    assert!(stats.elapsed_ps > 0, "simulation has not run");
    assert_eq!(stats.flows.len(), spec.flow_count(), "stats/spec mismatch");
    let tech = &cfg.technology;
    let link_model = LinkModel::new(tech, cfg.link_width_bits);
    let ni_model = NiModel::new(tech, cfg.link_width_bits);
    let fifo_model = BisyncFifoModel::new(tech, cfg.link_width_bits);

    // Observed per-flow delivered bandwidth.
    let observed: Vec<Bandwidth> = spec
        .flow_ids()
        .map(|fid| {
            Bandwidth::from_bytes_per_s(stats.flow_throughput_bytes_per_s(fid, packet_bytes))
        })
        .collect();

    // Attribute to switches / links / crossings along each route.
    let n_switch = topo.switches().len();
    let mut switch_bw = vec![Bandwidth::ZERO; n_switch];
    let mut link_bw = vec![Bandwidth::ZERO; topo.links().len()];
    let mut ni_bw = vec![Bandwidth::ZERO; spec.core_count()];
    for route in topo.routes() {
        let bw = observed[route.flow.index()];
        for &s in &route.switches {
            switch_bw[s.index()] += bw;
        }
        for pair in route.switches.windows(2) {
            if let Some(l) = topo.find_link(pair[0], pair[1]) {
                link_bw[l.index()] += bw;
            }
        }
        let f = spec.flow(route.flow);
        ni_bw[f.src.index()] += bw;
        ni_bw[f.dst.index()] += bw;
    }

    let mut p = MeasuredPower {
        switches: Power::ZERO,
        links: Power::ZERO,
        synchronizers: Power::ZERO,
        nis: Power::ZERO,
    };
    for s in topo.switch_ids() {
        let sw = topo.switch(s);
        let (inp, outp) = topo.switch_ports(s);
        let model = SwitchModel::new(tech, inp.max(1), outp.max(1), cfg.link_width_bits);
        p.switches += model.idle_power(topo.island_frequency(sw.island_ext))
            + model.traffic_power(switch_bw[s.index()]);
    }
    for (i, l) in topo.links().iter().enumerate() {
        p.links += link_model.traffic_power(l.length_mm, link_bw[i]);
        if l.crosses_domain() {
            let fu = topo.island_frequency(topo.switch(l.from).island_ext);
            let fv = topo.island_frequency(topo.switch(l.to).island_ext);
            p.synchronizers += fifo_model.power(fu, fv, link_bw[i]);
        }
    }
    for c in spec.core_ids() {
        let isl = topo.switch(topo.switch_of_core(c)).island_ext;
        p.nis += ni_model.power(topo.island_frequency(isl), ni_bw[c.index()]);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use vi_noc_core::{compute_metrics, synthesize};
    use vi_noc_soc::{benchmarks, partition};

    fn design() -> (SocSpec, Topology, SynthesisConfig) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        (
            soc.clone(),
            space.min_power_point().unwrap().topology.clone(),
            cfg,
        )
    }

    #[test]
    fn measured_power_tracks_analytic_at_full_load() {
        let (soc, topo, cfg) = design();
        let sim_cfg = SimConfig {
            load_factor: 1.0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&soc, &topo, &sim_cfg);
        let stats = sim.run_for_ns(150_000);
        let measured = measured_power(&soc, &topo, &cfg, &stats, 64.0);
        let analytic = compute_metrics(&soc, &topo, &cfg, None);
        // Delivered bandwidth can trail requested (saturated NIs), so the
        // measured dynamic power sits at or slightly below the analytic
        // value — never far off and never above by more than noise.
        let m = measured.fig2_power().mw();
        let a = analytic.power.fig2_power().mw();
        assert!(m <= a * 1.02, "measured {m} far above analytic {a}");
        assert!(m >= a * 0.7, "measured {m} far below analytic {a}");
    }

    #[test]
    fn idle_network_burns_only_clock_power() {
        let (soc, topo, cfg) = design();
        let mut sim = Simulator::new(&soc, &topo, &SimConfig::default());
        for fid in soc.flow_ids() {
            sim.deactivate_flow(fid);
        }
        let stats = sim.run_for_ns(20_000);
        let measured = measured_power(&soc, &topo, &cfg, &stats, 64.0);
        // No traffic: links and synchronizer *traffic* are zero; switches
        // and NIs keep their clock (idle) power only.
        assert!(measured.links.mw() < 1e-9);
        assert!(measured.switches.mw() > 0.0);
        let analytic = compute_metrics(&soc, &topo, &cfg, None);
        assert!(measured.fig2_power().mw() < analytic.power.fig2_power().mw());
    }

    #[test]
    fn lighter_load_burns_less() {
        let (soc, topo, cfg) = design();
        let run = |load: f64| {
            let sim_cfg = SimConfig {
                load_factor: load,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&soc, &topo, &sim_cfg);
            let stats = sim.run_for_ns(100_000);
            measured_power(&soc, &topo, &cfg, &stats, 64.0)
                .fig2_power()
                .mw()
        };
        let light = run(0.3);
        let heavy = run(0.9);
        assert!(
            light < heavy,
            "30% load ({light} mW) should burn less than 90% ({heavy} mW)"
        );
    }
}
