//! The multi-clock-domain simulation engine.
//!
//! Two interchangeable advancement strategies drive the same tick semantics:
//!
//! * **Cycle-stepped** (`SimConfig::batching = false`): every extended
//!   island ticks at every edge of its own clock, and every tick scans every
//!   switch port and every source NI of the island — the reference
//!   implementation.
//! * **Event-batched** (`SimConfig::batching = true`, the default): an
//!   [`EventHorizon`] tracks, per extended island, the earliest tick at
//!   which the island could possibly act — the earliest `ready_ps` among
//!   queued flits, the next scheduled packet injection, or an NI backlog of
//!   staged flits — and the island clock jumps straight to it. Within a
//!   processed tick, switches with no ready head and cores with nothing to
//!   inject are skipped in O(1).
//!
//! Batching is an *exact* optimization. A skipped tick is provably
//! action-free: its only effect in the stepped engine is advancing the
//! round-robin arbitration pointers, and because those pointers advance
//! unconditionally once per local cycle they are pure functions of the tick
//! index (`(t/period − 1) mod n`), which the batched engine evaluates in
//! closed form instead. Both strategies therefore produce **bit-identical**
//! [`SimStats`] — pinned by golden and property tests in
//! `crates/sim/tests/batching.rs`.

use crate::network::{PortTarget, SimNetwork};
use crate::stats::{FlowStats, SimStats};
use crate::traffic::{FlowGenerator, TrafficKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use vi_noc_core::Topology;
use vi_noc_soc::{FlowId, SocSpec};

/// Simulator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Packet payload size in bytes (flit count = size / link width).
    pub packet_bytes: usize,
    /// Link data width in bits (must match the synthesized topology).
    pub link_width_bits: usize,
    /// Output-queue capacity per port, flits.
    pub queue_capacity: usize,
    /// Injection process.
    pub traffic: TrafficKind,
    /// RNG seed (Poisson gaps, injection phases).
    pub seed: u64,
    /// Scale all flow bandwidths by this factor (1.0 = the spec's load).
    pub load_factor: f64,
    /// Advance island clocks event-to-event instead of cycle-by-cycle.
    ///
    /// Batching skips only ticks (and, within ticks, switches and NIs) at
    /// which no flit can move and no packet can arrive, so the resulting
    /// [`SimStats`] are bit-identical to a cycle-stepped run. Disable it to
    /// run the reference stepper — the equivalence tests and the
    /// `simulator` benchmarks do.
    pub batching: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_bytes: 64,
            link_width_bits: 32,
            queue_capacity: 8,
            traffic: TrafficKind::Cbr,
            seed: 0x51A1,
            load_factor: 1.0,
            batching: true,
        }
    }
}

/// A flit traversing the network.
#[derive(Debug, Clone, Copy)]
struct Flit {
    flow: u32,
    /// Index of the hop this flit currently sits at (into the flow's
    /// port route).
    hop: u32,
    is_tail: bool,
    /// Time the packet entered the source NI, ps.
    injected_ps: u64,
    /// Earliest time the flit may leave its current queue, ps.
    ready_ps: u64,
}

/// Per-domain scheduler state of the event-batched engine.
///
/// For each extended island it caches the earliest tick (an absolute time
/// on the island's clock grid) at which the island could act. A cache entry
/// stays valid until the island's own state changes — which can only happen
/// during one of its own ticks, or when another domain pushes a flit into
/// one of its queues — at which point the entry is marked dirty and
/// recomputed before the next scheduling decision.
#[derive(Debug)]
struct EventHorizon {
    /// Cached next interaction tick per domain, ps (`u64::MAX` = idle
    /// forever under current state).
    next_event: Vec<u64>,
    /// Entries that must be recomputed before being trusted again.
    dirty: Vec<bool>,
}

impl EventHorizon {
    fn new(n_domains: usize) -> Self {
        EventHorizon {
            next_event: vec![0; n_domains],
            dirty: vec![true; n_domains],
        }
    }

    fn mark(&mut self, d: usize) {
        self.dirty[d] = true;
    }

    fn mark_all(&mut self) {
        self.dirty.iter_mut().for_each(|x| *x = true);
    }
}

/// First tick of the grid `{t0, t0+p, t0+2p, …}` at or after `ready_ps`.
fn tick_at_or_after(t0: u64, p: u64, ready_ps: u64) -> u64 {
    if ready_ps <= t0 {
        t0
    } else {
        t0 + (ready_ps - t0).div_ceil(p) * p
    }
}

/// Integer time at/after the float instant `ps`, saturating distant values
/// (idle flows, `+inf` for deactivated ones) to `u64::MAX`.
///
/// [`Simulator::generate_arrivals`] fires a generator at tick `T` iff
/// `next_ps <= T as f64`; for the tick magnitudes a run can reach (far
/// below 2^53, where every `u64 → f64` cast is exact) that is equivalent to
/// `ceil(next_ps) <= T`, so the scheduler can compare pre-ceiled integers
/// instead of re-deriving float grid crossings on every lookup.
fn ceil_ps(ps: f64) -> u64 {
    if ps >= (u64::MAX / 4) as f64 {
        u64::MAX
    } else {
        ps.max(0.0).ceil() as u64
    }
}

/// The flit-level simulator.
///
/// Every island ticks at its own clock period; each switch output port
/// forwards at most one flit per local cycle; enqueueing into a full
/// downstream queue stalls (credit-style backpressure); island-crossing hops
/// add the 4-cycle bi-synchronous dwell in the reader's domain.
#[derive(Debug)]
pub struct Simulator {
    net: SimNetwork,
    cfg: SimConfig,
    rng: StdRng,
    /// Per-switch, per-port output queues.
    queues: Vec<Vec<VecDeque<Flit>>>,
    /// Per-flow staged flits not yet accepted by the source switch.
    staging: Vec<VecDeque<Flit>>,
    generators: Vec<FlowGenerator>,
    /// Round-robin pointer per switch (stepped mode only; the batched mode
    /// derives the pointer from the tick index in closed form).
    rr: Vec<usize>,
    /// Round-robin pointer over flows per source core (stepped mode only).
    inj_rr: Vec<usize>,
    /// Flows grouped by source core (each core's NI injects one flit per
    /// island cycle across its flows).
    flows_by_core: Vec<Vec<u32>>,
    /// Source core of each flow.
    core_of_flow: Vec<u32>,
    /// Switch indices grouped by extended island, ascending.
    switches_by_domain: Vec<Vec<u32>>,
    /// Core indices grouped by extended island, ascending.
    cores_by_domain: Vec<Vec<u32>>,
    /// Lower bound on the earliest `ready_ps` among a switch's queue heads
    /// (`u64::MAX` = believed empty). Maintained as a stale-low bound:
    /// pushes fold their flit in immediately; pops leave it untouched (the
    /// true minimum can only rise); each batched visit recomputes it
    /// exactly while it scans the ports anyway. The bound never exceeds the
    /// true minimum, so skipping a switch with `bound > now` is safe.
    min_head_ready: Vec<u64>,
    /// Earliest `next_injection_ps` among each core's active generators,
    /// rounded up to integer picoseconds (`u64::MAX` when all are
    /// deactivated). Exact at all times.
    gen_next_ps: Vec<u64>,
    /// Staged (NI-backlogged) flits per source core. Exact at all times.
    staged_cnt: Vec<u32>,
    /// Next tick per extended island, ps.
    next_tick: Vec<u64>,
    island_on: Vec<bool>,
    horizon: EventHorizon,
    now_ps: u64,
    flits_per_packet: u32,
    stats: SimStats,
}

impl Simulator {
    /// Builds a simulator for `topo` carrying the traffic of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not route every flow of `spec`.
    pub fn new(spec: &SocSpec, topo: &Topology, cfg: &SimConfig) -> Self {
        let net = SimNetwork::build(spec, topo);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let flits_per_packet = (cfg.packet_bytes * 8).div_ceil(cfg.link_width_bits).max(1) as u32;

        let queues: Vec<Vec<VecDeque<Flit>>> = net
            .switches
            .iter()
            .map(|s| s.ports.iter().map(|_| VecDeque::new()).collect())
            .collect();

        let mut flows_by_core = vec![Vec::new(); spec.core_count()];
        let mut core_of_flow = Vec::with_capacity(spec.flow_count());
        let mut generators = Vec::with_capacity(spec.flow_count());
        for fid in spec.flow_ids() {
            let f = spec.flow(fid);
            use rand::RngExt;
            let phase: f64 = rng.random::<f64>();
            generators.push(FlowGenerator::new(
                f.bandwidth.bytes_per_s() * cfg.load_factor,
                cfg.packet_bytes as f64,
                phase,
                cfg.traffic,
            ));
            flows_by_core[f.src.index()].push(fid.index() as u32);
            core_of_flow.push(f.src.index() as u32);
            // The first hop of every route must sit on the source core's own
            // switch — flits are injected there by the core's NI.
            assert_eq!(
                net.route(fid)[0].0,
                net.switch_of_core[f.src.index()],
                "flow {fid}: route does not start at the source core's switch"
            );
        }

        let n_domains = net.period_ps.len();
        let n_switches = net.switch_count();
        let n_cores = spec.core_count();
        let mut switches_by_domain = vec![Vec::new(); n_domains];
        for (si, sw) in net.switches.iter().enumerate() {
            switches_by_domain[sw.island_ext].push(si as u32);
        }
        let mut cores_by_domain = vec![Vec::new(); n_domains];
        for (ci, &d) in net.island_of_core.iter().enumerate() {
            cores_by_domain[d].push(ci as u32);
        }
        let mut sim = Simulator {
            rr: vec![0; n_switches],
            inj_rr: vec![0; n_cores],
            flows_by_core,
            core_of_flow,
            switches_by_domain,
            cores_by_domain,
            min_head_ready: vec![u64::MAX; n_switches],
            gen_next_ps: vec![u64::MAX; n_cores],
            staged_cnt: vec![0; n_cores],
            staging: vec![VecDeque::new(); spec.flow_count()],
            generators,
            queues,
            next_tick: net.period_ps.clone(),
            island_on: vec![true; n_domains],
            horizon: EventHorizon::new(n_domains),
            now_ps: 0,
            flits_per_packet,
            stats: SimStats {
                flows: vec![FlowStats::default(); spec.flow_count()],
                elapsed_ps: 0,
                flits_in_flight: 0,
                switch_flits: vec![0; n_switches],
            },
            net,
            cfg: cfg.clone(),
            rng,
        };
        for ci in 0..n_cores {
            sim.refresh_gen_next(ci);
        }
        sim
    }

    /// Current simulated time, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Flits per packet under the configured packet size and link width.
    pub fn flits_per_packet(&self) -> u32 {
        self.flits_per_packet
    }

    /// Stops injection of `flow` (used by shutdown scenarios).
    pub fn deactivate_flow(&mut self, flow: FlowId) {
        self.generators[flow.index()].active = false;
        self.refresh_gen_next(self.core_of_flow[flow.index()] as usize);
    }

    /// Power-gates extended island `island_ext`: its switches stop ticking.
    ///
    /// # Panics
    ///
    /// Panics if flits are still queued in the island (gate only after
    /// draining — the scenario driver handles this).
    pub fn gate_island(&mut self, island_ext: usize) {
        for (si, sw) in self.net.switches.iter().enumerate() {
            if sw.island_ext == island_ext {
                let queued: usize = self.queues[si].iter().map(VecDeque::len).sum();
                assert_eq!(
                    queued, 0,
                    "island {island_ext} gated with {queued} flits in switch {si}"
                );
            }
        }
        self.island_on[island_ext] = false;
    }

    /// Returns `true` if no flits remain queued anywhere (staging included).
    pub fn is_drained(&self) -> bool {
        self.staging.iter().all(VecDeque::is_empty)
            && self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .all(VecDeque::is_empty)
    }

    /// Returns `true` if no flits remain queued in the switches of extended
    /// island `island_ext` (the pre-condition for gating it).
    pub fn island_drained(&self, island_ext: usize) -> bool {
        self.switches_by_domain[island_ext]
            .iter()
            .all(|&si| self.queues[si as usize].iter().all(VecDeque::is_empty))
    }

    /// Runs until `deadline_ps`, returning a snapshot of the statistics.
    pub fn run_until_ps(&mut self, deadline_ps: u64) -> SimStats {
        if self.cfg.batching {
            self.run_batched(deadline_ps);
        } else {
            self.run_stepped(deadline_ps);
        }
        self.now_ps = deadline_ps;
        self.snapshot()
    }

    /// Runs for `ns` nanoseconds from the current time.
    pub fn run_for_ns(&mut self, ns: u64) -> SimStats {
        let deadline = self.now_ps + ns * 1_000;
        self.run_until_ps(deadline)
    }

    /// The reference stepper: every live domain ticks at every clock edge.
    fn run_stepped(&mut self, deadline_ps: u64) {
        while let Some((t, domains)) = self.earliest_tick(deadline_ps) {
            self.now_ps = t;
            for d in domains {
                self.tick_domain_stepped(d);
                self.next_tick[d] += self.net.period_ps[d];
            }
        }
    }

    /// The batched stepper: every live domain jumps straight from one
    /// interaction tick to the next.
    fn run_batched(&mut self, deadline_ps: u64) {
        let n_domains = self.next_tick.len();
        // Public state may have changed between runs (deactivated flows,
        // gated islands), so trust nothing from the previous call.
        self.horizon.mark_all();
        let mut due: Vec<usize> = Vec::with_capacity(n_domains);
        loop {
            // One pass refreshes stale entries, finds the earliest event
            // time and collects the domains due at it — in ascending index
            // order, exactly as the stepped engine orders same-timestamp
            // domains. A tick processed below can only affect a later
            // domain's *future* ticks (pushed flits become ready two
            // downstream cycles later), never create an action at `t` for
            // a domain not already due.
            let mut t = u64::MAX;
            due.clear();
            for d in 0..n_domains {
                if !self.island_on[d] {
                    continue;
                }
                if self.horizon.dirty[d] {
                    self.horizon.next_event[d] = self.compute_next_event(d);
                    self.horizon.dirty[d] = false;
                }
                let e = self.horizon.next_event[d];
                if e < t {
                    t = e;
                    due.clear();
                    due.push(d);
                } else if e == t {
                    due.push(d);
                }
            }
            if t >= deadline_ps {
                break;
            }
            self.now_ps = t;
            for &d in &due {
                let p = self.net.period_ps[d];
                debug_assert!(t >= self.next_tick[d] && (t - self.next_tick[d]) % p == 0);
                self.tick_domain_batched(d, t);
                self.next_tick[d] = t + p;
                self.horizon.mark(d);
            }
        }
        // The stepped engine keeps ticking (idly) up to the deadline; only
        // the clock positions survive of that — the arbitration pointers
        // are functions of the tick index, not state.
        for d in 0..n_domains {
            if self.island_on[d] && self.next_tick[d] < deadline_ps {
                self.next_tick[d] =
                    tick_at_or_after(self.next_tick[d], self.net.period_ps[d], deadline_ps);
            }
        }
    }

    /// Earliest tick at which domain `d` could act under its current state:
    /// the next tick outright if an NI has a staged backlog, else the first
    /// tick at/after the earliest queued flit's `ready_ps` or the earliest
    /// scheduled packet injection. A ready head blocked by backpressure
    /// counts as actionable (the unblocking pop happens in another domain's
    /// tick, which cannot be anticipated here), so blocked domains keep
    /// ticking cycle-by-cycle — batching never skips a tick that the
    /// stepped engine would have acted on.
    fn compute_next_event(&self, d: usize) -> u64 {
        let t0 = self.next_tick[d];
        let mut e_ps = u64::MAX;
        for &ci in &self.cores_by_domain[d] {
            let ci = ci as usize;
            if self.staged_cnt[ci] > 0 {
                return t0;
            }
            e_ps = e_ps.min(self.gen_next_ps[ci]);
        }
        for &si in &self.switches_by_domain[d] {
            e_ps = e_ps.min(self.min_head_ready[si as usize]);
        }
        // One grid conversion for the whole domain: min and "round up to
        // the next tick" commute.
        if e_ps == u64::MAX {
            u64::MAX
        } else {
            tick_at_or_after(t0, self.net.period_ps[d], e_ps)
        }
    }

    fn earliest_tick(&self, deadline_ps: u64) -> Option<(u64, Vec<usize>)> {
        let mut t = u64::MAX;
        for (d, &next) in self.next_tick.iter().enumerate() {
            if self.island_on[d] && next < t {
                t = next;
            }
        }
        if t >= deadline_ps || t == u64::MAX {
            return None;
        }
        let domains: Vec<usize> = (0..self.next_tick.len())
            .filter(|&d| self.island_on[d] && self.next_tick[d] == t)
            .collect();
        Some((t, domains))
    }

    /// One clock edge of every switch (and source NI) in domain `d` — the
    /// reference path: visit everything, maintain the round-robin pointers
    /// eagerly.
    fn tick_domain_stepped(&mut self, d: usize) {
        let t = self.now_ps;
        // Switch output stage: each port forwards at most one ready flit.
        for i in 0..self.switches_by_domain[d].len() {
            let si = self.switches_by_domain[d][i] as usize;
            let n_ports = self.queues[si].len();
            let start = self.rr[si];
            self.rr[si] = (start + 1) % n_ports.max(1);
            for off in 0..n_ports {
                let p = (start + off) % n_ports;
                self.forward_one(si, p, t);
            }
        }
        // Injection stage: one flit per source *core* per cycle (each core
        // has its own NI link), taken round-robin over the core's flows.
        for i in 0..self.cores_by_domain[d].len() {
            let ci = self.cores_by_domain[d][i] as usize;
            self.generate_arrivals(ci, t);
            self.inject_one(ci, t);
        }
    }

    /// One clock edge of domain `d` at tick time `t`, skipping every switch
    /// with no possibly-ready head and every core with nothing to generate
    /// or inject. The round-robin arbitration starts are derived from the
    /// tick index `t / period` in closed form, so skipped elements need no
    /// pointer bookkeeping — their state is untouched by an idle cycle.
    fn tick_domain_batched(&mut self, d: usize, t: u64) {
        let idx = t / self.net.period_ps[d];
        for i in 0..self.switches_by_domain[d].len() {
            let si = self.switches_by_domain[d][i] as usize;
            if self.min_head_ready[si] > t {
                continue;
            }
            let n_ports = self.queues[si].len();
            let start = ((idx - 1) % n_ports.max(1) as u64) as usize;
            // Recompute the bound exactly while scanning; same-tick pushes
            // from other switches fold themselves in through `forward_one`.
            self.min_head_ready[si] = u64::MAX;
            for off in 0..n_ports {
                let p = (start + off) % n_ports;
                self.forward_one(si, p, t);
                if let Some(head) = self.queues[si][p].front() {
                    self.min_head_ready[si] = self.min_head_ready[si].min(head.ready_ps);
                }
            }
        }
        for i in 0..self.cores_by_domain[d].len() {
            let ci = self.cores_by_domain[d][i] as usize;
            if self.gen_next_ps[ci] <= t {
                self.generate_arrivals(ci, t);
            }
            if self.staged_cnt[ci] > 0 {
                let n = self.flows_by_core[ci].len();
                let start = ((idx - 1) % n as u64) as usize;
                self.inject_from(ci, start, t);
            }
        }
    }

    /// Moves packets whose injection time has come into the staging queue.
    fn generate_arrivals(&mut self, ci: usize, t: u64) {
        let flows = std::mem::take(&mut self.flows_by_core[ci]);
        let mut staged = 0u32;
        for &fi in &flows {
            let g = &mut self.generators[fi as usize];
            while g.active && g.next_ps <= t as f64 {
                let injected_ps = g.next_ps.max(0.0) as u64;
                for k in 0..self.flits_per_packet {
                    self.staging[fi as usize].push_back(Flit {
                        flow: fi,
                        hop: 0,
                        is_tail: k + 1 == self.flits_per_packet,
                        injected_ps,
                        ready_ps: 0,
                    });
                }
                staged += self.flits_per_packet;
                self.stats.flows[fi as usize].injected_packets += 1;
                g.schedule_next(&mut self.rng);
            }
        }
        self.flows_by_core[ci] = flows;
        if staged > 0 {
            self.staged_cnt[ci] += staged;
            self.refresh_gen_next(ci);
        }
    }

    /// Recomputes the cached earliest injection instant of core `ci`.
    fn refresh_gen_next(&mut self, ci: usize) {
        let mut next = f64::INFINITY;
        for &fi in &self.flows_by_core[ci] {
            if let Some(ps) = self.generators[fi as usize].next_injection_ps() {
                next = next.min(ps);
            }
        }
        self.gen_next_ps[ci] = ceil_ps(next);
    }

    /// Moves one staged flit of core `ci` into its switch's first-hop queue
    /// (stepped path: consume and advance the round-robin pointer).
    fn inject_one(&mut self, ci: usize, t: u64) {
        let n = self.flows_by_core[ci].len();
        if n == 0 {
            return;
        }
        let start = self.inj_rr[ci];
        self.inj_rr[ci] = (start + 1) % n;
        self.inject_from(ci, start, t);
    }

    /// Moves one staged flit of core `ci` into its switch's first-hop
    /// queue, trying the core's flows round-robin from `start`.
    fn inject_from(&mut self, ci: usize, start: usize, t: u64) {
        let n = self.flows_by_core[ci].len();
        for off in 0..n {
            let fi = self.flows_by_core[ci][(start + off) % n] as usize;
            if self.staging[fi].is_empty() {
                continue;
            }
            let (si, port) = self.net.route(FlowId::from_index(fi))[0];
            if self.queues[si][port].len() >= self.cfg.queue_capacity {
                continue;
            }
            let mut flit = self.staging[fi].pop_front().expect("non-empty");
            let d = self.net.switches[si].island_ext;
            // NI link + switch traversal before the flit may leave.
            flit.ready_ps = t + 2 * self.net.period_ps[d];
            self.push_flit(si, port, flit);
            self.staged_cnt[ci] -= 1;
            return;
        }
    }

    /// Enqueues `flit` at (si, port), folding it into the switch's
    /// head-readiness bound.
    fn push_flit(&mut self, si: usize, port: usize, flit: Flit) {
        self.min_head_ready[si] = self.min_head_ready[si].min(flit.ready_ps);
        self.queues[si][port].push_back(flit);
    }

    /// Forwards the head flit of queue (si, p), if ready and accepted.
    fn forward_one(&mut self, si: usize, p: usize, t: u64) {
        let Some(&head) = self.queues[si][p].front() else {
            return;
        };
        if head.ready_ps > t {
            return;
        }
        match self.net.switches[si].ports[p].target {
            PortTarget::Eject => {
                let flit = self.queues[si][p].pop_front().expect("head exists");
                self.stats.switch_flits[si] += 1;
                if flit.is_tail {
                    let d = self.net.switches[si].island_ext;
                    // Final NI link traversal.
                    let latency = t + self.net.period_ps[d] - flit.injected_ps;
                    let fs = &mut self.stats.flows[flit.flow as usize];
                    fs.delivered_packets += 1;
                    fs.total_latency_ps += latency as u128;
                    fs.max_latency_ps = fs.max_latency_ps.max(latency);
                }
            }
            PortTarget::Link { to, crossing } => {
                let route = &self.net.route_ports[head.flow as usize];
                let next_hop = head.hop as usize + 1;
                let (next_sw, next_port) = route[next_hop];
                debug_assert_eq!(next_sw, to);
                if self.queues[to][next_port].len() >= self.cfg.queue_capacity {
                    return; // backpressure
                }
                let mut flit = self.queues[si][p].pop_front().expect("head exists");
                self.stats.switch_flits[si] += 1;
                let dd = self.net.switches[to].island_ext;
                let dwell = if crossing {
                    self.net.crossing_cycles * self.net.period_ps[dd]
                } else {
                    0
                };
                // Link + downstream switch traversal + converter dwell.
                flit.ready_ps = t + 2 * self.net.period_ps[dd] + dwell;
                flit.hop = next_hop as u32;
                self.push_flit(to, next_port, flit);
                // The receiving domain's cached horizon no longer covers
                // this flit.
                self.horizon.mark(dd);
            }
        }
    }

    fn snapshot(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.elapsed_ps = self.now_ps;
        stats.flits_in_flight = self.staging.iter().map(|q| q.len() as u64).sum::<u64>()
            + self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .map(|q| q.len() as u64)
                .sum::<u64>();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn sim_for(k: usize) -> (SocSpec, Simulator) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let sim = Simulator::new(&soc, &point.topology, &SimConfig::default());
        (soc, sim)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(50_000);
        assert!(stats.total_delivered_packets() > 100);
        assert!(stats.avg_latency_ps().is_some());
    }

    #[test]
    fn flit_conservation() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(30_000);
        let fpp = sim.flits_per_packet as u64;
        let injected_flits = stats.total_injected_packets() * fpp;
        // Delivered tail flits imply the whole packet was ejected; count all
        // ejected flits through the eject port counters is complex, so use:
        // injected = delivered + in-flight (+ flits of partially delivered
        // packets, bounded by queue capacity × ports).
        let delivered_flits = stats.total_delivered_packets() * fpp;
        assert!(
            injected_flits >= delivered_flits,
            "delivered more than injected"
        );
        let outstanding = injected_flits - delivered_flits;
        // Everything not delivered must be somewhere in the network or
        // about to be (partial packets in flight).
        assert!(
            stats.flits_in_flight <= outstanding,
            "in-flight {} exceeds outstanding {}",
            stats.flits_in_flight,
            outstanding
        );
    }

    #[test]
    fn cbr_throughput_tracks_demand() {
        // The frequency plan clocks each island at *exactly* its peak
        // bandwidth demand (paper step 1), so the hottest NI saturates at
        // load 1.0 and queueing is critical. Measure slightly below
        // saturation, where delivered throughput must track demand.
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let cfg = SimConfig {
            load_factor: 0.85,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&soc, &point.topology, &cfg);
        let stats = sim.run_for_ns(200_000);
        let mut worst_rel_err: f64 = 0.0;
        for fid in soc.flow_ids() {
            let f = soc.flow(fid);
            if f.bandwidth.mbps() < 100.0 {
                continue; // light flows deliver too few packets to measure
            }
            let got = stats.flow_throughput_bytes_per_s(fid, 64.0);
            let want = f.bandwidth.bytes_per_s() * 0.85;
            worst_rel_err = worst_rel_err.max((got - want).abs() / want);
        }
        assert!(
            worst_rel_err < 0.10,
            "worst throughput error {:.1}%",
            worst_rel_err * 100.0
        );
    }

    #[test]
    fn multi_island_latency_exceeds_single_island() {
        let (_, mut sim1) = sim_for(1);
        let (_, mut sim4) = sim_for(4);
        let s1 = sim1.run_for_ns(100_000);
        let s4 = sim4.run_for_ns(100_000);
        assert!(
            s4.avg_latency_ps().unwrap() > s1.avg_latency_ps().unwrap(),
            "crossing islands must cost latency: {} vs {}",
            s4.avg_latency_ps().unwrap(),
            s1.avg_latency_ps().unwrap()
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (_, mut a) = sim_for(4);
        let (_, mut b) = sim_for(4);
        let sa = a.run_for_ns(20_000);
        let sb = b.run_for_ns(20_000);
        assert_eq!(sa.total_delivered_packets(), sb.total_delivered_packets());
        assert_eq!(sa.avg_latency_ps(), sb.avg_latency_ps());
    }

    #[test]
    fn deactivated_flows_stop_injecting() {
        let (soc, mut sim) = sim_for(4);
        for fid in soc.flow_ids() {
            sim.deactivate_flow(fid);
        }
        let stats = sim.run_for_ns(20_000);
        assert_eq!(stats.total_injected_packets(), 0);
        assert!(sim.is_drained());
    }

    /// The core of the batching contract, at unit scale: one segmented run
    /// in each mode over the same design must agree on every statistic.
    #[test]
    fn batched_matches_stepped() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        for load in [0.3, 1.0] {
            let mut batched = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    load_factor: load,
                    batching: true,
                    ..SimConfig::default()
                },
            );
            let mut stepped = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    load_factor: load,
                    batching: false,
                    ..SimConfig::default()
                },
            );
            for ns in [7_000, 1, 13_000, 40_000] {
                let sb = batched.run_for_ns(ns);
                let ss = stepped.run_for_ns(ns);
                assert_eq!(sb, ss, "divergence at load {load} after +{ns} ns");
            }
        }
    }

    /// A long fully-idle span (every flow deactivated, network drained)
    /// must cost the batched engine nothing and leave it in lock-step with
    /// the reference when the run continues.
    #[test]
    fn batched_matches_stepped_through_idle_resume() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        let run = |batching: bool| {
            let mut sim = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    batching,
                    ..SimConfig::default()
                },
            );
            sim.run_for_ns(10_000);
            // Silence everything; the network drains and goes fully idle.
            for fid in soc.flow_ids() {
                sim.deactivate_flow(fid);
            }
            sim.run_for_ns(500_000);
            sim.run_for_ns(1_000)
        };
        assert_eq!(run(true), run(false));
    }
}
