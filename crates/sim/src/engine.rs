//! The multi-clock-domain simulation engine.
//!
//! Two interchangeable advancement strategies drive the same tick semantics:
//!
//! * **Cycle-stepped** (`SimConfig::batching = false`): every extended
//!   island ticks at every edge of its own clock, and every tick scans every
//!   switch port and every source NI of the island — the reference
//!   implementation.
//! * **Event-batched** (`SimConfig::batching = true`, the default): an
//!   [`EventHorizon`] tracks, per extended island, the earliest tick at
//!   which the island could possibly act — the earliest `ready_ps` among
//!   queued flits, the next scheduled packet injection, or an NI backlog of
//!   staged flits — and the island clock jumps straight to it. Within a
//!   processed tick, switches with no ready head and cores with nothing to
//!   inject are skipped in O(1).
//!
//! Batching is an *exact* optimization. A skipped tick is provably
//! action-free: its only effect in the stepped engine is advancing the
//! round-robin arbitration pointers, and because those pointers advance
//! unconditionally once per local cycle they are pure functions of the tick
//! index (`(t/period − 1) mod n`), which the batched engine evaluates in
//! closed form instead. Both strategies therefore produce **bit-identical**
//! [`SimStats`] — pinned by golden and property tests in
//! `crates/sim/tests/batching.rs`.
//!
//! Backpressure is covered by **wake lists** rather than busy-waiting: a
//! ready head stalled by a full downstream queue (and likewise an NI whose
//! candidate first-hop queues are all full) is *parked* — excluded from its
//! domain's next-event bound — and the full queue records the parked
//! upstream as a watcher. The unblocking pop is the only event that can
//! make the stalled retry succeed (a full queue cannot receive pushes, so
//! it stays full until its own pop; staging only shrinks by injection), so
//! the pop re-arms the watcher's domain at exactly the tick the stepped
//! engine's retry would first succeed at: the pop time itself when the
//! watcher is ordered after the popping domain (larger domain index, or a
//! later switch / the NI stage of the same domain's in-progress tick), else
//! the watcher's next edge strictly after the pop. A domain is therefore
//! silent iff the stepped engine would perform no state change on any of
//! its edges — saturated islands sleep between pops instead of degenerating
//! to cycle-stepping.

use crate::network::{PortTarget, SimNetwork};
use crate::stats::{FlowStats, SimStats};
use crate::traffic::{FlowGenerator, TrafficKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use vi_noc_core::Topology;
use vi_noc_soc::{FlowId, SocSpec};

/// Simulator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Packet payload size in bytes (flit count = size / link width).
    pub packet_bytes: usize,
    /// Link data width in bits (must match the synthesized topology).
    pub link_width_bits: usize,
    /// Output-queue capacity per port, flits.
    pub queue_capacity: usize,
    /// Injection process.
    pub traffic: TrafficKind,
    /// RNG seed (Poisson gaps, injection phases).
    pub seed: u64,
    /// Scale all flow bandwidths by this factor (1.0 = the spec's load).
    pub load_factor: f64,
    /// Advance island clocks event-to-event instead of cycle-by-cycle.
    ///
    /// Batching skips only ticks (and, within ticks, switches and NIs) at
    /// which no flit can move and no packet can arrive, so the resulting
    /// [`SimStats`] are bit-identical to a cycle-stepped run. Disable it to
    /// run the reference stepper — the equivalence tests and the
    /// `simulator` benchmarks do.
    pub batching: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_bytes: 64,
            link_width_bits: 32,
            queue_capacity: 8,
            traffic: TrafficKind::Cbr,
            seed: 0x51A1,
            load_factor: 1.0,
            batching: true,
        }
    }
}

/// A flit traversing the network.
#[derive(Debug, Clone, Copy)]
struct Flit {
    flow: u32,
    /// Index of the hop this flit currently sits at (into the flow's
    /// port route).
    hop: u32,
    is_tail: bool,
    /// Time the packet entered the source NI, ps.
    injected_ps: u64,
    /// Earliest time the flit may leave its current queue, ps.
    ready_ps: u64,
}

/// What a [`Simulator::forward_one`] attempt did to queue `(si, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForwardOutcome {
    /// Empty queue or head not ready yet — nothing to do at this tick.
    Idle,
    /// The head flit moved (ejected or pushed downstream).
    Moved,
    /// The head is ready but the downstream queue `(to, port)` is full.
    /// Only this outcome parks a port on a wake list.
    Blocked {
        /// Downstream switch holding the full queue.
        to: usize,
        /// Full output port of `to`.
        port: usize,
    },
}

/// A parked upstream element registered on a full queue's wake list,
/// woken by the pop that makes its stalled retry able to succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    /// A blocked switch output port, by global queue id
    /// ([`SimNetwork::port_id`]).
    Port(u32),
    /// A source core whose NI is parked, by core index. A core can watch
    /// several queues at once (one per backlogged flow), so its entries are
    /// validated against `parked_ni` when fired rather than kept exact.
    Core(u32),
}

/// Per-domain scheduler state of the event-batched engine.
///
/// For each extended island it caches the earliest tick (an absolute time
/// on the island's clock grid) at which the island could act. A cache entry
/// stays valid until the island's own state changes — which can only happen
/// during one of its own ticks, or when another domain pushes a flit into
/// one of its queues — at which point the entry is marked dirty and
/// recomputed before the next scheduling decision.
#[derive(Debug)]
struct EventHorizon {
    /// Cached next interaction tick per domain, ps (`u64::MAX` = idle
    /// forever under current state).
    next_event: Vec<u64>,
    /// Entries that must be recomputed before being trusted again.
    dirty: Vec<bool>,
}

impl EventHorizon {
    fn new(n_domains: usize) -> Self {
        EventHorizon {
            next_event: vec![0; n_domains],
            dirty: vec![true; n_domains],
        }
    }

    fn mark_all(&mut self) {
        self.dirty.iter_mut().for_each(|x| *x = true);
    }
}

impl Simulator {
    /// Folds a newly materialized future event of domain `dd` — a pushed
    /// flit becoming ready, a wake re-arming a parked element — into the
    /// domain's cached horizon entry in O(1). Pushes and wakes only ever
    /// move a domain's next event *earlier*, so a monotone `min` against
    /// the first grid tick covering `at_ps` keeps a clean entry exact
    /// without the full [`Self::compute_next_event`] rescan a dirty mark
    /// would cost. Dirty entries (the domain currently mid-tick, or any
    /// domain in a stepped-mode run) are left alone: their scheduled
    /// recompute reads the updated queue state anyway.
    fn fold_event(&mut self, dd: usize, at_ps: u64) {
        // The rounded-up tick can only improve the entry if the raw instant
        // already undercuts it, so the precheck skips the division on the
        // common path (the domain already has something earlier to do).
        if self.horizon.dirty[dd] || at_ps >= self.horizon.next_event[dd] {
            return;
        }
        let e = tick_at_or_after(self.next_tick[dd], self.net.period_ps[dd], at_ps);
        if e < self.horizon.next_event[dd] {
            self.horizon.next_event[dd] = e;
        }
    }
}

/// First tick of the grid `{t0, t0+p, t0+2p, …}` at or after `ready_ps`.
fn tick_at_or_after(t0: u64, p: u64, ready_ps: u64) -> u64 {
    if ready_ps <= t0 {
        t0
    } else {
        t0 + (ready_ps - t0).div_ceil(p) * p
    }
}

/// Integer time at/after the float instant `ps`, saturating distant values
/// (idle flows, `+inf` for deactivated ones) to `u64::MAX`.
///
/// [`Simulator::generate_arrivals`] fires a generator at tick `T` iff
/// `next_ps <= T as f64`; for the tick magnitudes a run can reach (far
/// below 2^53, where every `u64 → f64` cast is exact) that is equivalent to
/// `ceil(next_ps) <= T`, so the scheduler can compare pre-ceiled integers
/// instead of re-deriving float grid crossings on every lookup.
fn ceil_ps(ps: f64) -> u64 {
    if ps >= (u64::MAX / 4) as f64 {
        u64::MAX
    } else {
        ps.max(0.0).ceil() as u64
    }
}

/// The flit-level simulator.
///
/// Every island ticks at its own clock period; each switch output port
/// forwards at most one flit per local cycle; enqueueing into a full
/// downstream queue stalls (credit-style backpressure); island-crossing hops
/// add the 4-cycle bi-synchronous dwell in the reader's domain.
#[derive(Debug)]
pub struct Simulator {
    net: SimNetwork,
    cfg: SimConfig,
    rng: StdRng,
    /// Per-switch, per-port output queues.
    queues: Vec<Vec<VecDeque<Flit>>>,
    /// Per-flow staged flits not yet accepted by the source switch.
    staging: Vec<VecDeque<Flit>>,
    generators: Vec<FlowGenerator>,
    /// Round-robin pointer per switch (stepped mode only; the batched mode
    /// derives the pointer from the tick index in closed form).
    rr: Vec<usize>,
    /// Round-robin pointer over flows per source core (stepped mode only).
    inj_rr: Vec<usize>,
    /// Flows grouped by source core (each core's NI injects one flit per
    /// island cycle across its flows).
    flows_by_core: Vec<Vec<u32>>,
    /// Source core of each flow.
    core_of_flow: Vec<u32>,
    /// Switch indices grouped by extended island, ascending.
    switches_by_domain: Vec<Vec<u32>>,
    /// Core indices grouped by extended island, ascending.
    cores_by_domain: Vec<Vec<u32>>,
    /// Lower bound on the earliest `ready_ps` among a switch's *unblocked*
    /// queue heads (`u64::MAX` = believed empty or entirely parked).
    /// Maintained as a stale-low bound: pushes fold their flit in
    /// immediately; pops leave it untouched (the true minimum can only
    /// rise); each batched visit recomputes it exactly while it scans the
    /// ports anyway. Parked heads are deliberately left out — they are
    /// ready but provably unable to move until the pop that fires their
    /// wake, which folds them back in (`fire_wakes`). The bound never
    /// exceeds the true minimum over actionable heads, so skipping a switch
    /// with `bound > now` is safe; a low bound merely costs a no-op visit.
    min_head_ready: Vec<u64>,
    /// Earliest `next_injection_ps` among each core's active generators,
    /// rounded up to integer picoseconds (`u64::MAX` when all are
    /// deactivated). Exact at all times.
    gen_next_ps: Vec<u64>,
    /// Staged (NI-backlogged) flits per source core. Exact at all times.
    staged_cnt: Vec<u32>,
    /// Next tick per extended island, ps.
    next_tick: Vec<u64>,
    /// `next_tick / period_ps` per extended island, maintained
    /// incrementally by the batched engine so the closed-form round-robin
    /// starts need no per-tick division. Recomputed from `next_tick` at
    /// every `run_batched` entry (the stepped engine advances `next_tick`
    /// without touching this).
    tick_idx: Vec<u64>,
    island_on: Vec<bool>,
    horizon: EventHorizon,
    /// Wake list per global queue id: parked upstream elements to re-arm
    /// when the (full) queue pops. Non-empty only in batched mode, and only
    /// while the queue is full — the first pop drains the whole list.
    waiters: Vec<Vec<Waiter>>,
    /// Recycled backing buffer for draining a wake list: `fire_wakes`
    /// swaps it in for the fired list so neither side reallocates in
    /// steady state (a `mem::take` would leave the queue's list with zero
    /// capacity, costing one heap allocation per park/wake cycle).
    wake_scratch: Vec<Waiter>,
    /// Whether the switch output port with this global queue id is parked
    /// (ready head excluded from `min_head_ready`, one `Waiter::Port`
    /// registered downstream). Exact: set on park, cleared by the wake.
    parked_port: Vec<bool>,
    /// Whether this core's NI is parked (staged backlog excluded from
    /// `compute_next_event`'s next-tick shortcut). Set when an injection
    /// scan finds every candidate first-hop queue full; cleared by a wake,
    /// a successful injection, or re-validated after a generation event.
    parked_ni: Vec<bool>,
    /// Domain ticks actually processed (either engine). Not part of
    /// [`SimStats`] — the whole point of batching is that this differs
    /// across modes while the stats do not — but exposed for perf
    /// regression tests that must not depend on wall clocks.
    ticks_processed: u64,
    now_ps: u64,
    flits_per_packet: u32,
    stats: SimStats,
}

impl Simulator {
    /// Builds a simulator for `topo` carrying the traffic of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not route every flow of `spec`.
    pub fn new(spec: &SocSpec, topo: &Topology, cfg: &SimConfig) -> Self {
        let net = SimNetwork::build(spec, topo);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let flits_per_packet = (cfg.packet_bytes * 8).div_ceil(cfg.link_width_bits).max(1) as u32;

        let queues: Vec<Vec<VecDeque<Flit>>> = net
            .switches
            .iter()
            .map(|s| s.ports.iter().map(|_| VecDeque::new()).collect())
            .collect();

        let mut flows_by_core = vec![Vec::new(); spec.core_count()];
        let mut core_of_flow = Vec::with_capacity(spec.flow_count());
        let mut generators = Vec::with_capacity(spec.flow_count());
        for fid in spec.flow_ids() {
            let f = spec.flow(fid);
            use rand::RngExt;
            let phase: f64 = rng.random::<f64>();
            generators.push(FlowGenerator::new(
                f.bandwidth.bytes_per_s() * cfg.load_factor,
                cfg.packet_bytes as f64,
                phase,
                cfg.traffic,
            ));
            flows_by_core[f.src.index()].push(fid.index() as u32);
            core_of_flow.push(f.src.index() as u32);
            // The first hop of every route must sit on the source core's own
            // switch — flits are injected there by the core's NI.
            assert_eq!(
                net.route(fid)[0].0,
                net.switch_of_core[f.src.index()],
                "flow {fid}: route does not start at the source core's switch"
            );
        }

        let n_domains = net.period_ps.len();
        let n_switches = net.switch_count();
        let n_cores = spec.core_count();
        let mut switches_by_domain = vec![Vec::new(); n_domains];
        for (si, sw) in net.switches.iter().enumerate() {
            switches_by_domain[sw.island_ext].push(si as u32);
        }
        let mut cores_by_domain = vec![Vec::new(); n_domains];
        for (ci, &d) in net.island_of_core.iter().enumerate() {
            cores_by_domain[d].push(ci as u32);
        }
        let mut sim = Simulator {
            rr: vec![0; n_switches],
            inj_rr: vec![0; n_cores],
            flows_by_core,
            core_of_flow,
            switches_by_domain,
            cores_by_domain,
            min_head_ready: vec![u64::MAX; n_switches],
            gen_next_ps: vec![u64::MAX; n_cores],
            staged_cnt: vec![0; n_cores],
            staging: vec![VecDeque::new(); spec.flow_count()],
            generators,
            queues,
            next_tick: net.period_ps.clone(),
            tick_idx: vec![1; n_domains],
            island_on: vec![true; n_domains],
            horizon: EventHorizon::new(n_domains),
            waiters: vec![Vec::new(); net.port_count()],
            wake_scratch: Vec::new(),
            parked_port: vec![false; net.port_count()],
            parked_ni: vec![false; n_cores],
            ticks_processed: 0,
            now_ps: 0,
            flits_per_packet,
            stats: SimStats {
                flows: vec![FlowStats::default(); spec.flow_count()],
                elapsed_ps: 0,
                flits_in_flight: 0,
                switch_flits: vec![0; n_switches],
            },
            net,
            cfg: cfg.clone(),
            rng,
        };
        for ci in 0..n_cores {
            sim.refresh_gen_next(ci);
        }
        sim
    }

    /// Current simulated time, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Flits per packet under the configured packet size and link width.
    pub fn flits_per_packet(&self) -> u32 {
        self.flits_per_packet
    }

    /// Domain ticks processed so far (cumulative across runs).
    ///
    /// This is the engine's deterministic work metric: the batched engine
    /// must process strictly fewer ticks than the stepped reference on any
    /// workload with idle or blocked spans, and the wake-list perf tests
    /// assert on the ratio instead of on wall-clock time.
    pub fn ticks_processed(&self) -> u64 {
        self.ticks_processed
    }

    /// Stops injection of `flow` (used by shutdown scenarios).
    pub fn deactivate_flow(&mut self, flow: FlowId) {
        self.generators[flow.index()].active = false;
        self.refresh_gen_next(self.core_of_flow[flow.index()] as usize);
    }

    /// Power-gates extended island `island_ext`: its switches stop ticking.
    ///
    /// # Panics
    ///
    /// Panics if flits are still queued in the island (gate only after
    /// draining — the scenario driver handles this).
    pub fn gate_island(&mut self, island_ext: usize) {
        for (si, sw) in self.net.switches.iter().enumerate() {
            if sw.island_ext == island_ext {
                let queued: usize = self.queues[si].iter().map(VecDeque::len).sum();
                assert_eq!(
                    queued, 0,
                    "island {island_ext} gated with {queued} flits in switch {si}"
                );
            }
        }
        self.island_on[island_ext] = false;
    }

    /// Returns `true` if no flits remain queued anywhere (staging included).
    pub fn is_drained(&self) -> bool {
        self.staging.iter().all(VecDeque::is_empty)
            && self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .all(VecDeque::is_empty)
    }

    /// Returns `true` if no flits remain queued in the switches of extended
    /// island `island_ext` (the pre-condition for gating it).
    pub fn island_drained(&self, island_ext: usize) -> bool {
        self.switches_by_domain[island_ext]
            .iter()
            .all(|&si| self.queues[si as usize].iter().all(VecDeque::is_empty))
    }

    /// Runs until `deadline_ps`, returning a snapshot of the statistics.
    pub fn run_until_ps(&mut self, deadline_ps: u64) -> SimStats {
        if self.cfg.batching {
            self.run_batched(deadline_ps);
        } else {
            self.run_stepped(deadline_ps);
        }
        self.now_ps = deadline_ps;
        self.snapshot()
    }

    /// Runs for `ns` nanoseconds from the current time.
    pub fn run_for_ns(&mut self, ns: u64) -> SimStats {
        let deadline = self.now_ps + ns * 1_000;
        self.run_until_ps(deadline)
    }

    /// The reference stepper: every live domain ticks at every clock edge.
    fn run_stepped(&mut self, deadline_ps: u64) {
        while let Some((t, domains)) = self.earliest_tick(deadline_ps) {
            self.now_ps = t;
            for d in domains {
                self.tick_domain_stepped(d);
                self.next_tick[d] += self.net.period_ps[d];
                self.ticks_processed += 1;
            }
        }
    }

    /// The batched stepper: every live domain jumps straight from one
    /// interaction tick to the next.
    fn run_batched(&mut self, deadline_ps: u64) {
        let n_domains = self.next_tick.len();
        // Public state may have changed between runs (deactivated flows,
        // gated islands), so trust nothing from the previous call: refresh
        // every live domain's horizon entry up front. Gated domains are
        // pinned at `u64::MAX` and deliberately *kept dirty* — a stray push
        // into a gated island (an in-flight flit of a deactivated flow, as
        // frozen under the stepped engine) must not re-arm it, and
        // `fold_event` skips dirty entries. Nothing else dirties an entry
        // mid-run: ticks refresh their own entry in place and pushes/wakes
        // fold monotonically.
        self.horizon.mark_all();
        for d in 0..n_domains {
            self.tick_idx[d] = self.next_tick[d] / self.net.period_ps[d];
            if self.island_on[d] {
                self.horizon.next_event[d] = self.compute_next_event(d);
                self.horizon.dirty[d] = false;
            } else {
                self.horizon.next_event[d] = u64::MAX;
            }
        }
        loop {
            // Pick the single lexicographically earliest `(time, domain)`
            // tick — the exact order the stepped engine processes
            // same-timestamp domains in (ascending index). Ticks are taken
            // one at a time rather than batched per timestamp because a pop
            // inside this tick may wake a *higher-indexed* domain at the
            // same timestamp (the stepped engine's retry there happens
            // after this whole tick); the next pass picks that wake up
            // naturally. A tick can never create an action at `t` for a
            // lower-indexed domain: pushed flits become ready two
            // downstream cycles later, and wakes to lower-indexed domains
            // target `t + 1`.
            let mut t = u64::MAX;
            let mut dom = usize::MAX;
            for (d, &e) in self.horizon.next_event.iter().enumerate() {
                if e < t {
                    t = e;
                    dom = d;
                }
            }
            if t >= deadline_ps {
                break;
            }
            self.now_ps = t;
            let p = self.net.period_ps[dom];
            debug_assert!(t >= self.next_tick[dom] && (t - self.next_tick[dom]) % p == 0);
            // Catch the tick index up over the grid edges the domain slept
            // through (the division is exact — both instants sit on the
            // grid — and is skipped entirely for back-to-back ticks).
            if t > self.next_tick[dom] {
                self.tick_idx[dom] += (t - self.next_tick[dom]) / p;
            }
            let e_ps = self.tick_domain_batched(dom, t);
            self.next_tick[dom] = t + p;
            self.tick_idx[dom] += 1;
            // The tick pass already computed the domain's raw next-event
            // instant from the state it left behind; one grid conversion
            // refreshes the horizon entry without a dirty-mark rescan.
            self.horizon.next_event[dom] = if e_ps == u64::MAX {
                u64::MAX
            } else {
                tick_at_or_after(t + p, p, e_ps)
            };
            self.ticks_processed += 1;
        }
        // The stepped engine keeps ticking (idly) up to the deadline; only
        // the clock positions survive of that — the arbitration pointers
        // are functions of the tick index, not state.
        for d in 0..n_domains {
            if self.island_on[d] && self.next_tick[d] < deadline_ps {
                self.next_tick[d] =
                    tick_at_or_after(self.next_tick[d], self.net.period_ps[d], deadline_ps);
            }
        }
    }

    /// Earliest tick at which domain `d` could act under its current state:
    /// the next tick outright if an NI has an unparked staged backlog, else
    /// the first tick at/after the earliest *unblocked* queued flit's
    /// `ready_ps` or the earliest scheduled packet injection. Parked
    /// elements — ready heads stalled by full downstream queues, NIs whose
    /// every candidate first-hop queue is full — are excluded: their
    /// stepped-engine retries provably fail until the unblocking pop, and
    /// the pop's wake (`fire_wakes`) re-arms this domain at exactly the
    /// first tick a retry can succeed at. A domain whose only ready work is
    /// blocked therefore reports `u64::MAX` and sleeps between pops.
    fn compute_next_event(&self, d: usize) -> u64 {
        let t0 = self.next_tick[d];
        let mut e_ps = u64::MAX;
        for &ci in &self.cores_by_domain[d] {
            let ci = ci as usize;
            if self.staged_cnt[ci] > 0 && !self.parked_ni[ci] {
                return t0;
            }
            e_ps = e_ps.min(self.gen_next_ps[ci]);
        }
        for &si in &self.switches_by_domain[d] {
            e_ps = e_ps.min(self.min_head_ready[si as usize]);
        }
        // One grid conversion for the whole domain: min and "round up to
        // the next tick" commute.
        if e_ps == u64::MAX {
            u64::MAX
        } else {
            tick_at_or_after(t0, self.net.period_ps[d], e_ps)
        }
    }

    fn earliest_tick(&self, deadline_ps: u64) -> Option<(u64, Vec<usize>)> {
        let mut t = u64::MAX;
        for (d, &next) in self.next_tick.iter().enumerate() {
            if self.island_on[d] && next < t {
                t = next;
            }
        }
        if t >= deadline_ps || t == u64::MAX {
            return None;
        }
        let domains: Vec<usize> = (0..self.next_tick.len())
            .filter(|&d| self.island_on[d] && self.next_tick[d] == t)
            .collect();
        Some((t, domains))
    }

    /// One clock edge of every switch (and source NI) in domain `d` — the
    /// reference path: visit everything, maintain the round-robin pointers
    /// eagerly.
    fn tick_domain_stepped(&mut self, d: usize) {
        let t = self.now_ps;
        // Switch output stage: each port forwards at most one ready flit.
        for i in 0..self.switches_by_domain[d].len() {
            let si = self.switches_by_domain[d][i] as usize;
            let n_ports = self.queues[si].len();
            let start = self.rr[si];
            self.rr[si] = (start + 1) % n_ports.max(1);
            for off in 0..n_ports {
                let p = (start + off) % n_ports;
                self.forward_one(si, p, t);
            }
        }
        // Injection stage: one flit per source *core* per cycle (each core
        // has its own NI link), taken round-robin over the core's flows.
        for i in 0..self.cores_by_domain[d].len() {
            let ci = self.cores_by_domain[d][i] as usize;
            self.generate_arrivals(ci, t);
            self.inject_one(ci, t);
        }
    }

    /// One clock edge of domain `d` at tick time `t`, skipping every switch
    /// with no possibly-ready head and every core with nothing to generate
    /// or inject. The round-robin arbitration starts are derived from the
    /// tick index `t / period` in closed form, so skipped elements need no
    /// pointer bookkeeping — their state is untouched by an idle cycle.
    ///
    /// Returns the raw earliest instant (ps, not grid-rounded) at which the
    /// domain could act again given the state this tick leaves behind —
    /// the same quantity [`Self::compute_next_event`] derives, folded here
    /// for free while the tick walks the domain anyway. Core contributions
    /// fold as each core's stage completes (nothing later in the tick can
    /// touch core state); switch bounds fold in a final pass because the
    /// core stage pushes into this domain's own first-hop queues.
    fn tick_domain_batched(&mut self, d: usize, t: u64) -> u64 {
        let idx = self.tick_idx[d];
        debug_assert_eq!(idx, t / self.net.period_ps[d]);
        for i in 0..self.switches_by_domain[d].len() {
            let si = self.switches_by_domain[d][i] as usize;
            if self.min_head_ready[si] > t {
                continue;
            }
            let n_ports = self.queues[si].len();
            let start = if n_ports > 1 {
                ((idx - 1) % n_ports as u64) as usize
            } else {
                0
            };
            // Recompute the bound exactly while scanning; same-tick pushes
            // from other switches fold themselves in through `forward_one`.
            // A blocked head is parked instead of folded: it cannot move
            // before the pop that fires its wake, and the wake restores it.
            self.min_head_ready[si] = u64::MAX;
            for off in 0..n_ports {
                let p = (start + off) % n_ports;
                match self.forward_one(si, p, t) {
                    ForwardOutcome::Blocked { to, port } => self.park_port(si, p, to, port),
                    ForwardOutcome::Idle | ForwardOutcome::Moved => {
                        if let Some(head) = self.queues[si][p].front() {
                            self.min_head_ready[si] = self.min_head_ready[si].min(head.ready_ps);
                        }
                    }
                }
            }
        }
        let mut e_ps = u64::MAX;
        for i in 0..self.cores_by_domain[d].len() {
            let ci = self.cores_by_domain[d][i] as usize;
            let generated = self.gen_next_ps[ci] <= t;
            if generated {
                self.generate_arrivals(ci, t);
            }
            // A parked NI retries only after a generation event (freshly
            // staged flows may target a non-full queue) or its wake (the
            // pop of a watched queue, fired earlier in this very tick by
            // this domain's own switch stage — first-hop queues live on the
            // core's own switch). In between, stepped retries provably
            // fail: staging only shrinks by injection and the watched
            // queues stay full until they pop.
            if self.staged_cnt[ci] > 0 && (generated || !self.parked_ni[ci]) {
                let n = self.flows_by_core[ci].len();
                let start = if n > 1 {
                    ((idx - 1) % n as u64) as usize
                } else {
                    0
                };
                self.inject_from(ci, start, t, true);
            }
            if self.staged_cnt[ci] > 0 && !self.parked_ni[ci] {
                // Unparked backlog: due again at the very next edge.
                e_ps = 0;
            }
            e_ps = e_ps.min(self.gen_next_ps[ci]);
        }
        for &si in &self.switches_by_domain[d] {
            e_ps = e_ps.min(self.min_head_ready[si as usize]);
        }
        e_ps
    }

    /// Moves packets whose injection time has come into the staging queue.
    fn generate_arrivals(&mut self, ci: usize, t: u64) {
        let flows = std::mem::take(&mut self.flows_by_core[ci]);
        let mut staged = 0u32;
        for &fi in &flows {
            let g = &mut self.generators[fi as usize];
            while g.active && g.next_ps <= t as f64 {
                let injected_ps = g.next_ps.max(0.0) as u64;
                for k in 0..self.flits_per_packet {
                    self.staging[fi as usize].push_back(Flit {
                        flow: fi,
                        hop: 0,
                        is_tail: k + 1 == self.flits_per_packet,
                        injected_ps,
                        ready_ps: 0,
                    });
                }
                staged += self.flits_per_packet;
                self.stats.flows[fi as usize].injected_packets += 1;
                g.schedule_next(&mut self.rng);
            }
        }
        self.flows_by_core[ci] = flows;
        if staged > 0 {
            self.staged_cnt[ci] += staged;
            self.refresh_gen_next(ci);
        }
    }

    /// Recomputes the cached earliest injection instant of core `ci`.
    fn refresh_gen_next(&mut self, ci: usize) {
        let mut next = f64::INFINITY;
        for &fi in &self.flows_by_core[ci] {
            if let Some(ps) = self.generators[fi as usize].next_injection_ps() {
                next = next.min(ps);
            }
        }
        self.gen_next_ps[ci] = ceil_ps(next);
    }

    /// Moves one staged flit of core `ci` into its switch's first-hop queue
    /// (stepped path: consume and advance the round-robin pointer).
    fn inject_one(&mut self, ci: usize, t: u64) {
        let n = self.flows_by_core[ci].len();
        if n == 0 {
            return;
        }
        let start = self.inj_rr[ci];
        self.inj_rr[ci] = (start + 1) % n;
        self.inject_from(ci, start, t, false);
    }

    /// Moves one staged flit of core `ci` into its switch's first-hop
    /// queue, trying the core's flows round-robin from `start`.
    ///
    /// With `park` set (the batched path), a fully blocked scan — some flow
    /// has staged flits but every such flow's first-hop queue is full —
    /// parks the NI on the wake lists of those queues instead of leaving
    /// the core to busy-wait.
    fn inject_from(&mut self, ci: usize, start: usize, t: u64, park: bool) {
        let n = self.flows_by_core[ci].len();
        for off in 0..n {
            let fi = self.flows_by_core[ci][(start + off) % n] as usize;
            if self.staging[fi].is_empty() {
                continue;
            }
            let (si, port) = self.net.route(FlowId::from_index(fi))[0];
            if self.queues[si][port].len() >= self.cfg.queue_capacity {
                continue;
            }
            let mut flit = self.staging[fi].pop_front().expect("non-empty");
            let d = self.net.switches[si].island_ext;
            // NI link + switch traversal before the flit may leave.
            flit.ready_ps = t + 2 * self.net.period_ps[d];
            self.push_flit(si, port, flit);
            self.staged_cnt[ci] -= 1;
            self.parked_ni[ci] = false;
            return;
        }
        if park && self.staged_cnt[ci] > 0 {
            self.park_ni(ci);
        }
    }

    /// Parks core `ci`'s NI: every flow with staged flits found its
    /// first-hop queue full, so retries cannot succeed until one of those
    /// queues pops (or a generation event stages a flow with a different
    /// first hop — `tick_domain_batched` re-validates on generation).
    /// Registers one watcher per distinct full queue; `contains` dedups
    /// against entries left from earlier parks of the same core.
    fn park_ni(&mut self, ci: usize) {
        self.parked_ni[ci] = true;
        for off in 0..self.flows_by_core[ci].len() {
            let fi = self.flows_by_core[ci][off] as usize;
            if self.staging[fi].is_empty() {
                continue;
            }
            let (si, port) = self.net.route(FlowId::from_index(fi))[0];
            debug_assert!(self.queues[si][port].len() >= self.cfg.queue_capacity);
            let gid = self.net.port_id(si, port);
            let w = Waiter::Core(ci as u32);
            if !self.waiters[gid].contains(&w) {
                self.waiters[gid].push(w);
            }
        }
    }

    /// Parks switch output port `(si, p)`: its ready head is stalled by the
    /// full queue `(to, port)`, so it is excluded from `min_head_ready`
    /// until that queue's pop fires the wake. The `parked_port` flag dedups
    /// re-parks from later visits of the same blocked head.
    fn park_port(&mut self, si: usize, p: usize, to: usize, port: usize) {
        let blocked = self.net.port_id(si, p);
        if !self.parked_port[blocked] {
            self.parked_port[blocked] = true;
            self.waiters[self.net.port_id(to, port)].push(Waiter::Port(blocked as u32));
        }
    }

    /// Enqueues `flit` at (si, port), folding it into the switch's
    /// head-readiness bound.
    fn push_flit(&mut self, si: usize, port: usize, flit: Flit) {
        self.min_head_ready[si] = self.min_head_ready[si].min(flit.ready_ps);
        self.queues[si][port].push_back(flit);
    }

    /// Forwards the head flit of queue (si, p), if ready and accepted.
    /// Every pop fires the queue's wake list — the pop is the one event
    /// that can unblock a parked watcher.
    fn forward_one(&mut self, si: usize, p: usize, t: u64) -> ForwardOutcome {
        let Some(&head) = self.queues[si][p].front() else {
            return ForwardOutcome::Idle;
        };
        if head.ready_ps > t {
            return ForwardOutcome::Idle;
        }
        match self.net.switches[si].ports[p].target {
            PortTarget::Eject => {
                let flit = self.queues[si][p].pop_front().expect("head exists");
                self.fire_wakes(si, p, t);
                self.stats.switch_flits[si] += 1;
                if flit.is_tail {
                    let d = self.net.switches[si].island_ext;
                    // Final NI link traversal.
                    let latency = t + self.net.period_ps[d] - flit.injected_ps;
                    let fs = &mut self.stats.flows[flit.flow as usize];
                    fs.delivered_packets += 1;
                    fs.total_latency_ps += latency as u128;
                    fs.max_latency_ps = fs.max_latency_ps.max(latency);
                }
                ForwardOutcome::Moved
            }
            PortTarget::Link { to, crossing } => {
                let route = &self.net.route_ports[head.flow as usize];
                let next_hop = head.hop as usize + 1;
                let (next_sw, next_port) = route[next_hop];
                debug_assert_eq!(next_sw, to);
                if self.queues[to][next_port].len() >= self.cfg.queue_capacity {
                    return ForwardOutcome::Blocked {
                        to,
                        port: next_port,
                    };
                }
                let mut flit = self.queues[si][p].pop_front().expect("head exists");
                self.fire_wakes(si, p, t);
                self.stats.switch_flits[si] += 1;
                let dd = self.net.switches[to].island_ext;
                let dwell = if crossing {
                    self.net.crossing_cycles * self.net.period_ps[dd]
                } else {
                    0
                };
                // Link + downstream switch traversal + converter dwell.
                flit.ready_ps = t + 2 * self.net.period_ps[dd] + dwell;
                flit.hop = next_hop as u32;
                let ready = flit.ready_ps;
                self.push_flit(to, next_port, flit);
                // The receiving domain's cached horizon must cover the new
                // flit; a push only moves the next event earlier, so an
                // O(1) fold suffices (no dirty mark, no rescan).
                self.fold_event(dd, ready);
                ForwardOutcome::Moved
            }
        }
    }

    /// Re-arms everything parked on queue `(si, p)` after its pop. Port
    /// watchers fold their (still ready, still present) head back into
    /// `min_head_ready`; core watchers are validated against `parked_ni`
    /// (a core watches one queue per backlogged flow, and an earlier wake
    /// or successful injection leaves the other entries stale). Each woken
    /// element's domain is then rescheduled by [`Self::wake_domain`].
    fn fire_wakes(&mut self, si: usize, p: usize, t: u64) {
        let gid = self.net.port_id(si, p);
        if self.waiters[gid].is_empty() {
            return;
        }
        let popper = self.net.switches[si].island_ext;
        // Swap in the recycled buffer so the drained list keeps its backing
        // capacity for the next park (allocation-free in steady state).
        let list = std::mem::replace(
            &mut self.waiters[gid],
            std::mem::take(&mut self.wake_scratch),
        );
        for &w in &list {
            match w {
                Waiter::Port(blocked) => {
                    let blocked = blocked as usize;
                    debug_assert!(self.parked_port[blocked]);
                    self.parked_port[blocked] = false;
                    let (usi, up) = self.net.port_owner[blocked];
                    let (usi, up) = (usi as usize, up as usize);
                    // A parked head cannot have moved (its only exit is the
                    // pop this wake precedes) and pushes land behind it, so
                    // it is still the head, still ready.
                    let ready = self.queues[usi][up].front().expect("parked head").ready_ps;
                    debug_assert!(ready <= t);
                    self.min_head_ready[usi] = self.min_head_ready[usi].min(ready);
                    self.wake_domain(self.net.switches[usi].island_ext, popper, t);
                }
                Waiter::Core(ci) => {
                    let ci = ci as usize;
                    if !self.parked_ni[ci] {
                        continue; // stale entry from an earlier park
                    }
                    self.parked_ni[ci] = false;
                    self.wake_domain(self.net.island_of_core[ci], popper, t);
                }
            }
        }
        self.wake_scratch = list;
        self.wake_scratch.clear();
    }

    /// Schedules woken domain `dw` at the first tick its stalled retry can
    /// succeed at, given the unblocking pop happened at `t` inside domain
    /// `popper`'s tick.
    ///
    /// * `dw == popper`: nothing to schedule — the domain is mid-tick right
    ///   now. If the woken element is ordered after the popping switch
    ///   (a later switch, or the NI stage), this very tick re-reads the
    ///   live queue state when it gets there, exactly like the stepped
    ///   engine; if it was already visited, the restored bound/flag
    ///   reschedules it for the next edge when this tick's horizon entry is
    ///   recomputed.
    /// * `dw > popper`: the stepped engine processes `dw` after `popper` at
    ///   equal timestamps, so a retry at `t` itself already sees the pop.
    /// * `dw < popper`: `dw`'s edge at `t` (if any) was processed before
    ///   the pop, so the first retry that can see it is `dw`'s next edge
    ///   strictly after `t`.
    ///
    /// `next_tick[dw]` is fast-forwarded to that tick so the horizon
    /// recomputation anchors at it: the skipped grid edges are exactly the
    /// ones the scheduler had already proven action-free when it picked
    /// `(t, popper)` as the earliest event (the restored head was parked —
    /// excluded — for all of them).
    fn wake_domain(&mut self, dw: usize, popper: usize, t: u64) {
        if dw == popper || !self.island_on[dw] {
            return;
        }
        let target = if dw > popper { t } else { t + 1 };
        if target > self.next_tick[dw] {
            let p = self.net.period_ps[dw];
            let steps = (target - self.next_tick[dw]).div_ceil(p);
            self.next_tick[dw] += steps * p;
            self.tick_idx[dw] += steps;
        }
        // A wake only moves the woken domain's next event earlier: fold it
        // in O(1) instead of dirtying the whole domain for a rescan.
        self.fold_event(dw, self.next_tick[dw]);
    }

    fn snapshot(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.elapsed_ps = self.now_ps;
        stats.flits_in_flight = self.staging.iter().map(|q| q.len() as u64).sum::<u64>()
            + self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .map(|q| q.len() as u64)
                .sum::<u64>();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn sim_for(k: usize) -> (SocSpec, Simulator) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let sim = Simulator::new(&soc, &point.topology, &SimConfig::default());
        (soc, sim)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(50_000);
        assert!(stats.total_delivered_packets() > 100);
        assert!(stats.avg_latency_ps().is_some());
    }

    #[test]
    fn flit_conservation() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(30_000);
        let fpp = sim.flits_per_packet as u64;
        let injected_flits = stats.total_injected_packets() * fpp;
        // Delivered tail flits imply the whole packet was ejected; count all
        // ejected flits through the eject port counters is complex, so use:
        // injected = delivered + in-flight (+ flits of partially delivered
        // packets, bounded by queue capacity × ports).
        let delivered_flits = stats.total_delivered_packets() * fpp;
        assert!(
            injected_flits >= delivered_flits,
            "delivered more than injected"
        );
        let outstanding = injected_flits - delivered_flits;
        // Everything not delivered must be somewhere in the network or
        // about to be (partial packets in flight).
        assert!(
            stats.flits_in_flight <= outstanding,
            "in-flight {} exceeds outstanding {}",
            stats.flits_in_flight,
            outstanding
        );
    }

    #[test]
    fn cbr_throughput_tracks_demand() {
        // The frequency plan clocks each island at *exactly* its peak
        // bandwidth demand (paper step 1), so the hottest NI saturates at
        // load 1.0 and queueing is critical. Measure slightly below
        // saturation, where delivered throughput must track demand.
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let cfg = SimConfig {
            load_factor: 0.85,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&soc, &point.topology, &cfg);
        let stats = sim.run_for_ns(200_000);
        let mut worst_rel_err: f64 = 0.0;
        for fid in soc.flow_ids() {
            let f = soc.flow(fid);
            if f.bandwidth.mbps() < 100.0 {
                continue; // light flows deliver too few packets to measure
            }
            let got = stats.flow_throughput_bytes_per_s(fid, 64.0);
            let want = f.bandwidth.bytes_per_s() * 0.85;
            worst_rel_err = worst_rel_err.max((got - want).abs() / want);
        }
        assert!(
            worst_rel_err < 0.10,
            "worst throughput error {:.1}%",
            worst_rel_err * 100.0
        );
    }

    #[test]
    fn multi_island_latency_exceeds_single_island() {
        let (_, mut sim1) = sim_for(1);
        let (_, mut sim4) = sim_for(4);
        let s1 = sim1.run_for_ns(100_000);
        let s4 = sim4.run_for_ns(100_000);
        assert!(
            s4.avg_latency_ps().unwrap() > s1.avg_latency_ps().unwrap(),
            "crossing islands must cost latency: {} vs {}",
            s4.avg_latency_ps().unwrap(),
            s1.avg_latency_ps().unwrap()
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (_, mut a) = sim_for(4);
        let (_, mut b) = sim_for(4);
        let sa = a.run_for_ns(20_000);
        let sb = b.run_for_ns(20_000);
        assert_eq!(sa.total_delivered_packets(), sb.total_delivered_packets());
        assert_eq!(sa.avg_latency_ps(), sb.avg_latency_ps());
    }

    #[test]
    fn deactivated_flows_stop_injecting() {
        let (soc, mut sim) = sim_for(4);
        for fid in soc.flow_ids() {
            sim.deactivate_flow(fid);
        }
        let stats = sim.run_for_ns(20_000);
        assert_eq!(stats.total_injected_packets(), 0);
        assert!(sim.is_drained());
    }

    /// The core of the batching contract, at unit scale: one segmented run
    /// in each mode over the same design must agree on every statistic.
    #[test]
    fn batched_matches_stepped() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        for load in [0.3, 1.0] {
            let mut batched = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    load_factor: load,
                    batching: true,
                    ..SimConfig::default()
                },
            );
            let mut stepped = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    load_factor: load,
                    batching: false,
                    ..SimConfig::default()
                },
            );
            for ns in [7_000, 1, 13_000, 40_000] {
                let sb = batched.run_for_ns(ns);
                let ss = stepped.run_for_ns(ns);
                assert_eq!(sb, ss, "divergence at load {load} after +{ns} ns");
            }
        }
    }

    /// A long fully-idle span (every flow deactivated, network drained)
    /// must cost the batched engine nothing and leave it in lock-step with
    /// the reference when the run continues.
    #[test]
    fn batched_matches_stepped_through_idle_resume() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        let run = |batching: bool| {
            let mut sim = Simulator::new(
                &soc,
                topo,
                &SimConfig {
                    batching,
                    ..SimConfig::default()
                },
            );
            sim.run_for_ns(10_000);
            // Silence everything; the network drains and goes fully idle.
            for fid in soc.flow_ids() {
                sim.deactivate_flow(fid);
            }
            sim.run_for_ns(500_000);
            sim.run_for_ns(1_000)
        };
        assert_eq!(run(true), run(false));
    }
}
