//! The multi-clock-domain simulation engine.

use crate::network::{PortTarget, SimNetwork};
use crate::stats::{FlowStats, SimStats};
use crate::traffic::{FlowGenerator, TrafficKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use vi_noc_core::Topology;
use vi_noc_soc::{FlowId, SocSpec};

/// Simulator parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Packet payload size in bytes (flit count = size / link width).
    pub packet_bytes: usize,
    /// Link data width in bits (must match the synthesized topology).
    pub link_width_bits: usize,
    /// Output-queue capacity per port, flits.
    pub queue_capacity: usize,
    /// Injection process.
    pub traffic: TrafficKind,
    /// RNG seed (Poisson gaps, injection phases).
    pub seed: u64,
    /// Scale all flow bandwidths by this factor (1.0 = the spec's load).
    pub load_factor: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_bytes: 64,
            link_width_bits: 32,
            queue_capacity: 8,
            traffic: TrafficKind::Cbr,
            seed: 0x51A1,
            load_factor: 1.0,
        }
    }
}

/// A flit traversing the network.
#[derive(Debug, Clone, Copy)]
struct Flit {
    flow: u32,
    /// Index of the hop this flit currently sits at (into the flow's
    /// port route).
    hop: u32,
    is_tail: bool,
    /// Time the packet entered the source NI, ps.
    injected_ps: u64,
    /// Earliest time the flit may leave its current queue, ps.
    ready_ps: u64,
}

/// The cycle-level simulator.
///
/// Every island ticks at its own clock period; each switch output port
/// forwards at most one flit per local cycle; enqueueing into a full
/// downstream queue stalls (credit-style backpressure); island-crossing hops
/// add the 4-cycle bi-synchronous dwell in the reader's domain.
#[derive(Debug)]
pub struct Simulator {
    net: SimNetwork,
    cfg: SimConfig,
    rng: StdRng,
    /// Per-switch, per-port output queues.
    queues: Vec<Vec<VecDeque<Flit>>>,
    /// Per-flow staged flits not yet accepted by the source switch.
    staging: Vec<VecDeque<Flit>>,
    generators: Vec<FlowGenerator>,
    /// Round-robin pointer per switch.
    rr: Vec<usize>,
    /// Round-robin pointer over flows per source core.
    inj_rr: Vec<usize>,
    /// Flows grouped by source core (each core's NI injects one flit per
    /// island cycle across its flows).
    flows_by_core: Vec<Vec<u32>>,
    /// Next tick per extended island, ps.
    next_tick: Vec<u64>,
    island_on: Vec<bool>,
    now_ps: u64,
    flits_per_packet: u32,
    stats: SimStats,
}

impl Simulator {
    /// Builds a simulator for `topo` carrying the traffic of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not route every flow of `spec`.
    pub fn new(spec: &SocSpec, topo: &Topology, cfg: &SimConfig) -> Self {
        let net = SimNetwork::build(spec, topo);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let flits_per_packet = (cfg.packet_bytes * 8).div_ceil(cfg.link_width_bits).max(1) as u32;

        let queues: Vec<Vec<VecDeque<Flit>>> = net
            .switches
            .iter()
            .map(|s| s.ports.iter().map(|_| VecDeque::new()).collect())
            .collect();

        let mut flows_by_core = vec![Vec::new(); spec.core_count()];
        let mut generators = Vec::with_capacity(spec.flow_count());
        for fid in spec.flow_ids() {
            let f = spec.flow(fid);
            use rand::RngExt;
            let phase: f64 = rng.random::<f64>();
            generators.push(FlowGenerator::new(
                f.bandwidth.bytes_per_s() * cfg.load_factor,
                cfg.packet_bytes as f64,
                phase,
                cfg.traffic,
            ));
            flows_by_core[f.src.index()].push(fid.index() as u32);
            // The first hop of every route must sit on the source core's own
            // switch — flits are injected there by the core's NI.
            assert_eq!(
                net.route(fid)[0].0,
                net.switch_of_core[f.src.index()],
                "flow {fid}: route does not start at the source core's switch"
            );
        }

        let n_domains = net.period_ps.len();
        let n_switches = net.switch_count();
        let n_cores = spec.core_count();
        Simulator {
            rr: vec![0; n_switches],
            inj_rr: vec![0; n_cores],
            flows_by_core,
            staging: vec![VecDeque::new(); spec.flow_count()],
            generators,
            queues,
            next_tick: net.period_ps.clone(),
            island_on: vec![true; n_domains],
            now_ps: 0,
            flits_per_packet,
            stats: SimStats {
                flows: vec![FlowStats::default(); spec.flow_count()],
                elapsed_ps: 0,
                flits_in_flight: 0,
                switch_flits: vec![0; n_switches],
            },
            net,
            cfg: cfg.clone(),
            rng,
        }
    }

    /// Current simulated time, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Stops injection of `flow` (used by shutdown scenarios).
    pub fn deactivate_flow(&mut self, flow: FlowId) {
        self.generators[flow.index()].active = false;
    }

    /// Power-gates extended island `island_ext`: its switches stop ticking.
    ///
    /// # Panics
    ///
    /// Panics if flits are still queued in the island (gate only after
    /// draining — the scenario driver handles this).
    pub fn gate_island(&mut self, island_ext: usize) {
        for (si, sw) in self.net.switches.iter().enumerate() {
            if sw.island_ext == island_ext {
                let queued: usize = self.queues[si].iter().map(VecDeque::len).sum();
                assert_eq!(
                    queued, 0,
                    "island {island_ext} gated with {queued} flits in switch {si}"
                );
            }
        }
        self.island_on[island_ext] = false;
    }

    /// Returns `true` if no flits remain queued anywhere (staging included).
    pub fn is_drained(&self) -> bool {
        self.staging.iter().all(VecDeque::is_empty)
            && self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .all(VecDeque::is_empty)
    }

    /// Returns `true` if no flits remain queued in the switches of extended
    /// island `island_ext` (the pre-condition for gating it).
    pub fn island_drained(&self, island_ext: usize) -> bool {
        self.net
            .switches
            .iter()
            .enumerate()
            .filter(|(_, sw)| sw.island_ext == island_ext)
            .all(|(si, _)| self.queues[si].iter().all(VecDeque::is_empty))
    }

    /// Runs until `deadline_ps`, returning a snapshot of the statistics.
    pub fn run_until_ps(&mut self, deadline_ps: u64) -> SimStats {
        while let Some((t, domains)) = self.earliest_tick(deadline_ps) {
            self.now_ps = t;
            for d in domains {
                self.tick_domain(d);
                self.next_tick[d] += self.net.period_ps[d];
            }
        }
        self.now_ps = deadline_ps;
        self.snapshot()
    }

    /// Runs for `ns` nanoseconds from the current time.
    pub fn run_for_ns(&mut self, ns: u64) -> SimStats {
        let deadline = self.now_ps + ns * 1_000;
        self.run_until_ps(deadline)
    }

    fn earliest_tick(&self, deadline_ps: u64) -> Option<(u64, Vec<usize>)> {
        let mut t = u64::MAX;
        for (d, &next) in self.next_tick.iter().enumerate() {
            if self.island_on[d] && next < t {
                t = next;
            }
        }
        if t >= deadline_ps || t == u64::MAX {
            return None;
        }
        let domains: Vec<usize> = (0..self.next_tick.len())
            .filter(|&d| self.island_on[d] && self.next_tick[d] == t)
            .collect();
        Some((t, domains))
    }

    /// One clock edge of every switch (and source NI) in domain `d`.
    fn tick_domain(&mut self, d: usize) {
        let t = self.now_ps;
        // Switch output stage: each port forwards at most one ready flit.
        for si in 0..self.net.switch_count() {
            if self.net.switches[si].island_ext != d {
                continue;
            }
            let n_ports = self.queues[si].len();
            let start = self.rr[si];
            self.rr[si] = (start + 1).max(1) % n_ports.max(1);
            for off in 0..n_ports {
                let p = (start + off) % n_ports;
                self.forward_one(si, p, t);
            }
        }
        // Injection stage: one flit per source *core* per cycle (each core
        // has its own NI link), taken round-robin over the core's flows.
        for ci in 0..self.flows_by_core.len() {
            if self.net.island_of_core[ci] != d {
                continue;
            }
            self.generate_arrivals(ci, t);
            self.inject_one(ci, t);
        }
    }

    /// Moves packets whose injection time has come into the staging queue.
    fn generate_arrivals(&mut self, ci: usize, t: u64) {
        let flows = std::mem::take(&mut self.flows_by_core[ci]);
        for &fi in &flows {
            let g = &mut self.generators[fi as usize];
            while g.active && g.next_ps <= t as f64 {
                let injected_ps = g.next_ps.max(0.0) as u64;
                for k in 0..self.flits_per_packet {
                    self.staging[fi as usize].push_back(Flit {
                        flow: fi,
                        hop: 0,
                        is_tail: k + 1 == self.flits_per_packet,
                        injected_ps,
                        ready_ps: 0,
                    });
                }
                self.stats.flows[fi as usize].injected_packets += 1;
                g.schedule_next(&mut self.rng);
            }
        }
        self.flows_by_core[ci] = flows;
    }

    /// Moves one staged flit of core `ci` into its switch's first-hop queue.
    fn inject_one(&mut self, ci: usize, t: u64) {
        let n = self.flows_by_core[ci].len();
        if n == 0 {
            return;
        }
        let start = self.inj_rr[ci];
        self.inj_rr[ci] = (start + 1) % n;
        for off in 0..n {
            let fi = self.flows_by_core[ci][(start + off) % n] as usize;
            if self.staging[fi].is_empty() {
                continue;
            }
            let (si, port) = self.net.route(FlowId::from_index(fi))[0];
            if self.queues[si][port].len() >= self.cfg.queue_capacity {
                continue;
            }
            let mut flit = self.staging[fi].pop_front().expect("non-empty");
            let d = self.net.switches[si].island_ext;
            // NI link + switch traversal before the flit may leave.
            flit.ready_ps = t + 2 * self.net.period_ps[d];
            self.queues[si][port].push_back(flit);
            return;
        }
    }

    /// Forwards the head flit of queue (si, p), if ready and accepted.
    fn forward_one(&mut self, si: usize, p: usize, t: u64) {
        let Some(&head) = self.queues[si][p].front() else {
            return;
        };
        if head.ready_ps > t {
            return;
        }
        match self.net.switches[si].ports[p].target {
            PortTarget::Eject => {
                let flit = self.queues[si][p].pop_front().expect("head exists");
                self.stats.switch_flits[si] += 1;
                if flit.is_tail {
                    let d = self.net.switches[si].island_ext;
                    // Final NI link traversal.
                    let latency = t + self.net.period_ps[d] - flit.injected_ps;
                    let fs = &mut self.stats.flows[flit.flow as usize];
                    fs.delivered_packets += 1;
                    fs.total_latency_ps += latency as u128;
                    fs.max_latency_ps = fs.max_latency_ps.max(latency);
                }
            }
            PortTarget::Link { to, crossing } => {
                let route = &self.net.route_ports[head.flow as usize];
                let next_hop = head.hop as usize + 1;
                let (next_sw, next_port) = route[next_hop];
                debug_assert_eq!(next_sw, to);
                if self.queues[to][next_port].len() >= self.cfg.queue_capacity {
                    return; // backpressure
                }
                let mut flit = self.queues[si][p].pop_front().expect("head exists");
                self.stats.switch_flits[si] += 1;
                let dd = self.net.switches[to].island_ext;
                let dwell = if crossing {
                    self.net.crossing_cycles * self.net.period_ps[dd]
                } else {
                    0
                };
                // Link + downstream switch traversal + converter dwell.
                flit.ready_ps = t + 2 * self.net.period_ps[dd] + dwell;
                flit.hop = next_hop as u32;
                self.queues[to][next_port].push_back(flit);
            }
        }
    }

    fn snapshot(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.elapsed_ps = self.now_ps;
        stats.flits_in_flight = self.staging.iter().map(|q| q.len() as u64).sum::<u64>()
            + self
                .queues
                .iter()
                .flat_map(|q| q.iter())
                .map(|q| q.len() as u64)
                .sum::<u64>();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn sim_for(k: usize) -> (SocSpec, Simulator) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let sim = Simulator::new(&soc, &point.topology, &SimConfig::default());
        (soc, sim)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(50_000);
        assert!(stats.total_delivered_packets() > 100);
        assert!(stats.avg_latency_ps().is_some());
    }

    #[test]
    fn flit_conservation() {
        let (_, mut sim) = sim_for(4);
        let stats = sim.run_for_ns(30_000);
        let fpp = sim.flits_per_packet as u64;
        let injected_flits = stats.total_injected_packets() * fpp;
        // Delivered tail flits imply the whole packet was ejected; count all
        // ejected flits through the eject port counters is complex, so use:
        // injected = delivered + in-flight (+ flits of partially delivered
        // packets, bounded by queue capacity × ports).
        let delivered_flits = stats.total_delivered_packets() * fpp;
        assert!(
            injected_flits >= delivered_flits,
            "delivered more than injected"
        );
        let outstanding = injected_flits - delivered_flits;
        // Everything not delivered must be somewhere in the network or
        // about to be (partial packets in flight).
        assert!(
            stats.flits_in_flight <= outstanding,
            "in-flight {} exceeds outstanding {}",
            stats.flits_in_flight,
            outstanding
        );
    }

    #[test]
    fn cbr_throughput_tracks_demand() {
        // The frequency plan clocks each island at *exactly* its peak
        // bandwidth demand (paper step 1), so the hottest NI saturates at
        // load 1.0 and queueing is critical. Measure slightly below
        // saturation, where delivered throughput must track demand.
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let point = space.min_power_point().unwrap();
        let cfg = SimConfig {
            load_factor: 0.85,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&soc, &point.topology, &cfg);
        let stats = sim.run_for_ns(200_000);
        let mut worst_rel_err: f64 = 0.0;
        for fid in soc.flow_ids() {
            let f = soc.flow(fid);
            if f.bandwidth.mbps() < 100.0 {
                continue; // light flows deliver too few packets to measure
            }
            let got = stats.flow_throughput_bytes_per_s(fid, 64.0);
            let want = f.bandwidth.bytes_per_s() * 0.85;
            worst_rel_err = worst_rel_err.max((got - want).abs() / want);
        }
        assert!(
            worst_rel_err < 0.10,
            "worst throughput error {:.1}%",
            worst_rel_err * 100.0
        );
    }

    #[test]
    fn multi_island_latency_exceeds_single_island() {
        let (_, mut sim1) = sim_for(1);
        let (_, mut sim4) = sim_for(4);
        let s1 = sim1.run_for_ns(100_000);
        let s4 = sim4.run_for_ns(100_000);
        assert!(
            s4.avg_latency_ps().unwrap() > s1.avg_latency_ps().unwrap(),
            "crossing islands must cost latency: {} vs {}",
            s4.avg_latency_ps().unwrap(),
            s1.avg_latency_ps().unwrap()
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (_, mut a) = sim_for(4);
        let (_, mut b) = sim_for(4);
        let sa = a.run_for_ns(20_000);
        let sb = b.run_for_ns(20_000);
        assert_eq!(sa.total_delivered_packets(), sb.total_delivered_packets());
        assert_eq!(sa.avg_latency_ps(), sb.avg_latency_ps());
    }

    #[test]
    fn deactivated_flows_stop_injecting() {
        let (soc, mut sim) = sim_for(4);
        for fid in soc.flow_ids() {
            sim.deactivate_flow(fid);
        }
        let stats = sim.run_for_ns(20_000);
        assert_eq!(stats.total_injected_packets(), 0);
        assert!(sim.is_drained());
    }
}
