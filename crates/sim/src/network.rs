//! Static simulation network derived from a synthesized topology.
//!
//! Everything here is resolved once, before time starts: switches with
//! output-buffered ports, per-extended-island clock periods, per-flow
//! port-level routes and core→switch attachments. The engine
//! (`crate::engine`) owns all mutable state — queues, generators and the
//! per-switch/per-core readiness bounds its event scheduler batches ticks
//! with — so this structure can be shared read-only by every run mode.

use std::collections::HashMap;
use vi_noc_core::{SwitchId, Topology};
use vi_noc_models::BisyncFifoModel;
use vi_noc_soc::{FlowId, SocSpec};

/// Where an output port of a switch leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PortTarget {
    /// Ejection to one attached core's NI (each core has its own NI link,
    /// hence its own ejection port).
    Eject,
    /// A link to another switch: `(downstream switch, crossing)`.
    Link {
        /// Downstream switch index.
        to: usize,
        /// `true` if the link crosses a clock/voltage boundary.
        crossing: bool,
    },
}

/// One output port (an output-buffered queue feeding a link or an NI).
#[derive(Debug, Clone)]
pub(crate) struct Port {
    pub target: PortTarget,
}

/// A switch instance in the simulation.
#[derive(Debug, Clone)]
pub(crate) struct SimSwitch {
    /// Extended island index (clock domain).
    pub island_ext: usize,
    pub ports: Vec<Port>,
}

/// The static structure the engine runs on: switches with resolved output
/// ports, per-island clock periods, and per-flow port-level routes.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    pub(crate) switches: Vec<SimSwitch>,
    /// Clock period per extended island, picoseconds.
    pub(crate) period_ps: Vec<u64>,
    /// For each flow: `(switch, port)` hops, ending at the destination
    /// core's ejection port.
    pub(crate) route_ports: Vec<Vec<(usize, usize)>>,
    /// Switch of each core (NI attachment).
    pub(crate) switch_of_core: Vec<usize>,
    /// Clock domain of each core's NI (its switch's island).
    pub(crate) island_of_core: Vec<usize>,
    /// Crossing dwell in reader-domain cycles.
    pub(crate) crossing_cycles: u64,
    /// First global queue id of each switch: queue `(si, p)` has the
    /// workspace-wide id `port_base[si] + p`. The engine's wake lists are
    /// keyed by these ids so a watcher registration is one `Vec` push.
    pub(crate) port_base: Vec<usize>,
    /// Owning `(switch, port)` of each global queue id (the inverse of
    /// [`Self::port_id`]).
    pub(crate) port_owner: Vec<(u32, u32)>,
}

impl SimNetwork {
    /// Builds the simulation structure for `topo`.
    ///
    /// # Panics
    ///
    /// Panics if some flow of `spec` has no route in `topo` (synthesized
    /// topologies always route everything).
    pub fn build(spec: &SocSpec, topo: &Topology) -> Self {
        let n_switch = topo.switches().len();
        let mut switches: Vec<SimSwitch> = (0..n_switch)
            .map(|i| SimSwitch {
                island_ext: topo.switches()[i].island_ext,
                ports: Vec::new(),
            })
            .collect();

        // One ejection port per attached core (each core has its own NI
        // link of one flit per island cycle).
        let mut eject_port_of_core = vec![usize::MAX; spec.core_count()];
        let mut switch_of_core = vec![usize::MAX; spec.core_count()];
        let mut island_of_core = vec![usize::MAX; spec.core_count()];
        for (i, sw) in topo.switches().iter().enumerate() {
            for &core in &sw.cores {
                eject_port_of_core[core.index()] = switches[i].ports.len();
                switch_of_core[core.index()] = i;
                island_of_core[core.index()] = sw.island_ext;
                switches[i].ports.push(Port {
                    target: PortTarget::Eject,
                });
            }
        }
        // Link ports.
        let mut link_port = HashMap::new();
        for l in topo.links() {
            let from = l.from.index();
            let idx = switches[from].ports.len();
            switches[from].ports.push(Port {
                target: PortTarget::Link {
                    to: l.to.index(),
                    crossing: l.crosses_domain(),
                },
            });
            link_port.insert((l.from, l.to), idx);
        }

        // Clock periods (extended islands: real + intermediate).
        let n_isl = topo.island_count();
        let period_ps: Vec<u64> = (0..=n_isl)
            .map(|j| {
                let f = topo.island_frequency(j);
                (1e12 / f.hz().max(1.0)).round() as u64
            })
            .collect();

        // Per-flow port routes.
        let mut route_ports = Vec::with_capacity(spec.flow_count());
        for fid in spec.flow_ids() {
            let route = topo
                .route(fid)
                .unwrap_or_else(|| panic!("flow {fid} has no route"));
            let dst = spec.flow(fid).dst;
            let mut hops = Vec::with_capacity(route.switches.len());
            for (h, &s) in route.switches.iter().enumerate() {
                let port = if h + 1 < route.switches.len() {
                    let next: SwitchId = route.switches[h + 1];
                    link_port[&(s, next)]
                } else {
                    eject_port_of_core[dst.index()]
                };
                hops.push((s.index(), port));
            }
            route_ports.push(hops);
        }

        // Global queue ids, assigned switch-major so `(si, p)` round-trips
        // through `port_id` / `port_owner`.
        let mut port_base = Vec::with_capacity(n_switch);
        let mut port_owner = Vec::new();
        for (i, sw) in switches.iter().enumerate() {
            port_base.push(port_owner.len());
            for p in 0..sw.ports.len() {
                port_owner.push((i as u32, p as u32));
            }
        }

        SimNetwork {
            switches,
            period_ps,
            route_ports,
            switch_of_core,
            island_of_core,
            crossing_cycles: BisyncFifoModel::CROSSING_LATENCY_CYCLES as u64,
            port_base,
            port_owner,
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Clock period of extended island `island_ext`, picoseconds.
    pub fn period_ps(&self, island_ext: usize) -> u64 {
        self.period_ps[island_ext]
    }

    /// The port-level route of `flow` as `(switch, port)` pairs.
    pub(crate) fn route(&self, flow: FlowId) -> &[(usize, usize)] {
        &self.route_ports[flow.index()]
    }

    /// Global id of output queue `(si, p)`.
    pub(crate) fn port_id(&self, si: usize, p: usize) -> usize {
        self.port_base[si] + p
    }

    /// Total output queues across all switches.
    pub(crate) fn port_count(&self) -> usize {
        self.port_owner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn network() -> (SocSpec, SimNetwork) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        let net = SimNetwork::build(&soc, topo);
        (soc, net)
    }

    #[test]
    fn every_flow_has_a_port_route() {
        let (soc, net) = network();
        for fid in soc.flow_ids() {
            let route = net.route(fid);
            assert!(!route.is_empty());
            // Last hop ejects; earlier hops are links.
            let (last_sw, last_port) = *route.last().unwrap();
            assert_eq!(
                net.switches[last_sw].ports[last_port].target,
                PortTarget::Eject
            );
            for &(sw, port) in &route[..route.len() - 1] {
                assert!(matches!(
                    net.switches[sw].ports[port].target,
                    PortTarget::Link { .. }
                ));
            }
        }
    }

    #[test]
    fn port_links_are_consistent_chains() {
        let (soc, net) = network();
        for fid in soc.flow_ids() {
            let route = net.route(fid);
            for w in route.windows(2) {
                let (sw, port) = w[0];
                match net.switches[sw].ports[port].target {
                    PortTarget::Link { to, .. } => assert_eq!(to, w[1].0),
                    PortTarget::Eject => panic!("premature ejection"),
                }
            }
        }
    }

    #[test]
    fn distinct_cores_have_distinct_eject_ports() {
        let (soc, net) = network();
        // Flows to different cores on the same switch must use different
        // ejection ports (each core has its own NI link).
        for a in soc.flow_ids() {
            for b in soc.flow_ids() {
                if a == b {
                    continue;
                }
                let (fa, fb) = (soc.flow(a), soc.flow(b));
                let (sa, pa) = *net.route(a).last().unwrap();
                let (sb, pb) = *net.route(b).last().unwrap();
                if sa == sb && fa.dst != fb.dst {
                    assert_ne!(pa, pb, "flows {a},{b} share an eject port");
                }
                if fa.dst == fb.dst {
                    assert_eq!((sa, pa), (sb, pb));
                }
            }
        }
    }

    #[test]
    fn periods_reflect_island_frequencies() {
        let (_, net) = network();
        for p in &net.period_ps {
            assert!(*p >= 1_000, "period {p} ps implies > 1 GHz island");
            assert!(*p <= 50_000, "period {p} ps implies < 20 MHz island");
        }
        assert_eq!(net.crossing_cycles, 4);
    }

    #[test]
    fn port_ids_round_trip() {
        let (_, net) = network();
        let total: usize = net.switches.iter().map(|s| s.ports.len()).sum();
        assert_eq!(net.port_count(), total);
        for (si, sw) in net.switches.iter().enumerate() {
            for p in 0..sw.ports.len() {
                let gid = net.port_id(si, p);
                assert_eq!(net.port_owner[gid], (si as u32, p as u32));
            }
        }
    }

    #[test]
    fn core_attachments_resolved() {
        let (soc, net) = network();
        for c in soc.core_ids() {
            assert!(net.switch_of_core[c.index()] != usize::MAX);
            assert!(net.island_of_core[c.index()] != usize::MAX);
        }
    }
}
