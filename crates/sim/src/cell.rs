//! One dynamic-sweep cell: a full simulation of a design point under one
//! sim config, optionally with a mid-run island shutdown.
//!
//! This is the measurement primitive of the `vi-noc-dynsweep` crate. It
//! mirrors [`crate::run_shutdown_scenario`]'s phase structure (run → stop
//! flows → drain → gate → post-gate run) but is **non-panicking** on drain
//! failure: a dynamic sweep deliberately pushes load factors past
//! saturation, where an island's own backlog may not flush within the
//! drain budget. Such a cell records `drained_cleanly: false` and skips
//! the gate (the island keeps running), instead of tearing down the whole
//! sweep — the result is still a deterministic, comparable measurement.

use crate::engine::{SimConfig, Simulator};
use crate::shutdown::ShutdownScenario;
use crate::stats::SimStats;
use vi_noc_core::Topology;
use vi_noc_soc::{SocSpec, ViAssignment};

/// Shutdown-phase measurements of a gated cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellShutdown {
    /// `true` iff the island drained within the budget and was gated.
    pub drained_cleanly: bool,
    /// Packets delivered by surviving flows before the gate point.
    pub survivors_before: u64,
    /// Packets delivered by surviving flows after the gate point.
    pub survivors_after: u64,
}

/// Final cumulative statistics of one cell run, plus the shutdown-phase
/// measurements when the cell carried a gate schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Cumulative stats at the end of the run.
    pub stats: SimStats,
    /// Shutdown measurements; `None` for free-running cells.
    pub shutdown: Option<CellShutdown>,
}

/// Runs one cell: `horizon_ns` of free-running traffic when `schedule` is
/// `None`, otherwise the schedule's own timeline (run to `stop_at_ns`,
/// deactivate flows touching the island, drain adaptively, gate if — and
/// only if — the island drained, then run `post_gate_ns` more).
///
/// Unlike [`crate::run_shutdown_scenario`] this never panics on a drain
/// failure; saturated cells simply report `drained_cleanly: false`.
///
/// # Panics
///
/// Panics if `schedule` names an always-on island — the caller is expected
/// to validate schedules against `vi` up front (the dynsweep engine does).
pub fn run_dynamic_cell(
    spec: &SocSpec,
    vi: &ViAssignment,
    topo: &Topology,
    cfg: &SimConfig,
    horizon_ns: u64,
    schedule: Option<&ShutdownScenario>,
) -> CellOutcome {
    let mut sim = Simulator::new(spec, topo, cfg);
    let Some(sched) = schedule else {
        let stats = sim.run_for_ns(horizon_ns);
        return CellOutcome {
            stats,
            shutdown: None,
        };
    };
    assert!(
        vi.can_shutdown(sched.island),
        "island {} is always-on",
        sched.island
    );

    // Phase 1: everything runs.
    let s1 = sim.run_for_ns(sched.stop_at_ns);
    let survivor = |fid: vi_noc_soc::FlowId| {
        let f = spec.flow(fid);
        vi.island_of(f.src) != sched.island && vi.island_of(f.dst) != sched.island
    };
    let survivors_before: u64 = spec
        .flow_ids()
        .filter(|&fid| survivor(fid))
        .map(|fid| s1.flow(fid).delivered_packets)
        .sum();

    // Phase 2: stop flows terminating in the island, then drain
    // adaptively — same chunked polling as `run_shutdown_scenario`, but a
    // saturated island that misses the budget is tolerated, not fatal.
    for fid in spec.flow_ids() {
        if !survivor(fid) {
            sim.deactivate_flow(fid);
        }
    }
    let mut waited = 0;
    while !sim.island_drained(sched.island) && waited < 20 {
        sim.run_for_ns(sched.drain_ns);
        waited += 1;
    }
    let drained_cleanly = sim.island_drained(sched.island);

    // Phase 3: gate only when provably empty (`gate_island` would assert).
    if drained_cleanly {
        sim.gate_island(sched.island);
    }

    // Phase 4: survivors continue.
    let stats = sim.run_for_ns(sched.post_gate_ns);
    let survivors_total: u64 = spec
        .flow_ids()
        .filter(|&fid| survivor(fid))
        .map(|fid| stats.flow(fid).delivered_packets)
        .sum();

    CellOutcome {
        shutdown: Some(CellShutdown {
            drained_cleanly,
            survivors_before,
            survivors_after: survivors_total - survivors_before,
        }),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_shutdown_scenario;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn design() -> (SocSpec, ViAssignment, Topology) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        (soc, vi, topo)
    }

    #[test]
    fn free_running_cell_equals_a_plain_run() {
        let (soc, vi, topo) = design();
        let cfg = SimConfig::default();
        let cell = run_dynamic_cell(&soc, &vi, &topo, &cfg, 20_000, None);
        let mut sim = Simulator::new(&soc, &topo, &cfg);
        let reference = sim.run_for_ns(20_000);
        assert_eq!(cell.stats, reference);
        assert!(cell.shutdown.is_none());
    }

    #[test]
    fn gated_cell_agrees_with_the_shutdown_scenario_runner() {
        let (soc, vi, topo) = design();
        let island = (0..vi.island_count())
            .find(|&j| vi.can_shutdown(j))
            .expect("some island can shut down");
        let sched = ShutdownScenario {
            island,
            stop_at_ns: 5_000,
            drain_ns: 3_000,
            post_gate_ns: 8_000,
        };
        let cfg = SimConfig::default();
        let cell = run_dynamic_cell(&soc, &vi, &topo, &cfg, 0, Some(&sched));
        let reference = run_shutdown_scenario(&soc, &vi, &topo, &cfg, &sched);
        let shut = cell.shutdown.expect("gated cell records shutdown");
        assert!(shut.drained_cleanly);
        assert_eq!(shut.survivors_before, reference.survivors_before);
        assert_eq!(shut.survivors_after, reference.survivors_after);
        assert_eq!(
            cell.stats.total_delivered_packets(),
            reference.total_delivered
        );
    }
}
