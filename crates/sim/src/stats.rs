//! Simulation statistics.

use vi_noc_soc::FlowId;

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets injected into the source NI.
    pub injected_packets: u64,
    /// Packets fully delivered (tail flit ejected).
    pub delivered_packets: u64,
    /// Sum of delivered-packet latencies, ps.
    pub total_latency_ps: u128,
    /// Worst delivered-packet latency, ps.
    pub max_latency_ps: u64,
}

impl FlowStats {
    /// Mean packet latency in picoseconds (`None` before any delivery).
    pub fn avg_latency_ps(&self) -> Option<f64> {
        if self.delivered_packets == 0 {
            None
        } else {
            Some(self.total_latency_ps as f64 / self.delivered_packets as f64)
        }
    }
}

/// Whole-run statistics.
///
/// Accumulated at flit-movement events (injection, forwarding, ejection),
/// never per cycle — so a batched run that skips idle cycles produces the
/// same counters, bit for bit, as a cycle-stepped one. `PartialEq` compares
/// every counter exactly; the batching equivalence suite relies on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Per-flow stats, indexed by flow id.
    pub flows: Vec<FlowStats>,
    /// Simulated time, ps.
    pub elapsed_ps: u64,
    /// Flits still queued in the network at the end of the run.
    pub flits_in_flight: u64,
    /// Flits forwarded per topology switch (activity counters).
    pub switch_flits: Vec<u64>,
}

impl SimStats {
    /// Stats of one flow.
    pub fn flow(&self, id: FlowId) -> &FlowStats {
        &self.flows[id.index()]
    }

    /// Total packets delivered over all flows.
    pub fn total_delivered_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.delivered_packets).sum()
    }

    /// Total packets injected over all flows.
    pub fn total_injected_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.injected_packets).sum()
    }

    /// Mean packet latency over all delivered packets, ps.
    pub fn avg_latency_ps(&self) -> Option<f64> {
        let delivered: u64 = self.total_delivered_packets();
        if delivered == 0 {
            return None;
        }
        let total: u128 = self.flows.iter().map(|f| f.total_latency_ps).sum();
        Some(total as f64 / delivered as f64)
    }

    /// Delivered throughput of a flow in bytes/s given the packet size.
    pub fn flow_throughput_bytes_per_s(&self, id: FlowId, packet_bytes: f64) -> f64 {
        if self.elapsed_ps == 0 {
            return 0.0;
        }
        self.flows[id.index()].delivered_packets as f64 * packet_bytes
            / (self.elapsed_ps as f64 / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_empty() {
        let f = FlowStats::default();
        assert_eq!(f.avg_latency_ps(), None);
        let s = SimStats::default();
        assert_eq!(s.avg_latency_ps(), None);
    }

    #[test]
    fn aggregates_sum_flows() {
        let stats = SimStats {
            flows: vec![
                FlowStats {
                    injected_packets: 10,
                    delivered_packets: 8,
                    total_latency_ps: 8_000,
                    max_latency_ps: 2_000,
                },
                FlowStats {
                    injected_packets: 5,
                    delivered_packets: 5,
                    total_latency_ps: 5_000,
                    max_latency_ps: 1_500,
                },
            ],
            elapsed_ps: 1_000_000,
            flits_in_flight: 3,
            switch_flits: vec![],
        };
        assert_eq!(stats.total_delivered_packets(), 13);
        assert_eq!(stats.total_injected_packets(), 15);
        assert!((stats.avg_latency_ps().unwrap() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_from_packets() {
        let stats = SimStats {
            flows: vec![FlowStats {
                injected_packets: 100,
                delivered_packets: 100,
                total_latency_ps: 0,
                max_latency_ps: 0,
            }],
            elapsed_ps: 1_000_000_000, // 1 ms
            flits_in_flight: 0,
            switch_flits: vec![],
        };
        let tput = stats.flow_throughput_bytes_per_s(FlowId::from_index(0), 64.0);
        assert!((tput - 6.4e6).abs() < 1.0);
    }
}
