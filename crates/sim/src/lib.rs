//! Flit-level NoC simulator with voltage-island shutdown scenarios and an
//! event-batched multi-clock engine.
//!
//! The paper evaluates its topologies with zero-load latency arithmetic;
//! this crate validates those numbers dynamically and demonstrates the
//! headline property — traffic between live islands is unaffected when
//! another island is power-gated:
//!
//! * [`SimNetwork`] — a flit-level, output-queued network instantiated from
//!   a synthesized [`vi_noc_core::Topology`]. Every voltage island ticks in
//!   its own clock domain (periods from the synthesis frequency plan);
//!   island-crossing links pay the 4-cycle bi-synchronous FIFO dwell.
//! * [`Simulator`] — the multi-domain engine: CBR or Poisson traffic per
//!   flow, credit-style backpressure, per-flow latency/throughput stats and
//!   flit conservation accounting. By default it advances each island's
//!   clock event-to-event ([`SimConfig::batching`]), producing statistics
//!   bit-identical to cycle-by-cycle stepping at a fraction of the cost on
//!   long-horizon or lightly loaded runs.
//! * [`zero_load_latency_ps`] — the analytic expectation the engine is
//!   cross-checked against (and the basis of the Figure-3 reproduction).
//! * [`ShutdownScenario`] — drain-and-gate orchestration: stop flows
//!   touching an island, let them drain, gate the island, and verify the
//!   surviving traffic never stalls.
//!
//! # Example
//!
//! ```
//! use vi_noc_core::{synthesize, SynthesisConfig};
//! use vi_noc_soc::{benchmarks, partition};
//! use vi_noc_sim::{SimConfig, Simulator, TrafficKind};
//!
//! let soc = benchmarks::d12_auto();
//! let vi = partition::logical_partition(&soc, 4)?;
//! let space = synthesize(&soc, &vi, &SynthesisConfig::default())?;
//! let point = space.min_power_point().unwrap();
//!
//! let cfg = SimConfig { traffic: TrafficKind::Cbr, ..SimConfig::default() };
//! let mut sim = Simulator::new(&soc, &point.topology, &cfg);
//! let stats = sim.run_for_ns(20_000);
//! assert!(stats.total_delivered_packets() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cell;
mod energy;
mod engine;
mod network;
mod shutdown;
mod stats;
mod traffic;
mod zeroload;

pub use cell::{run_dynamic_cell, CellOutcome, CellShutdown};
pub use energy::{measured_power, MeasuredPower};
pub use engine::{SimConfig, Simulator};
pub use network::SimNetwork;
pub use shutdown::{run_shutdown_scenario, ShutdownOutcome, ShutdownScenario};
pub use stats::{FlowStats, SimStats};
pub use traffic::TrafficKind;
pub use zeroload::{zero_load_cycles, zero_load_latency_ps};
