//! Island shutdown scenarios: drain, gate, and verify surviving traffic.

use crate::engine::{SimConfig, Simulator};
use vi_noc_core::Topology;
use vi_noc_soc::{SocSpec, ViAssignment};

/// A shutdown experiment: gate `island` partway through a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownScenario {
    /// The (real) island to power-gate.
    pub island: usize,
    /// Time to stop flows touching the island, ns.
    pub stop_at_ns: u64,
    /// Extra drain time before gating, ns.
    pub drain_ns: u64,
    /// Additional runtime after gating, ns.
    pub post_gate_ns: u64,
}

impl Default for ShutdownScenario {
    fn default() -> Self {
        ShutdownScenario {
            island: 0,
            stop_at_ns: 30_000,
            drain_ns: 10_000,
            post_gate_ns: 60_000,
        }
    }
}

/// Outcome of a shutdown scenario run.
///
/// Compares exactly (`PartialEq`), so the batching equivalence suite can
/// assert that event-batched and cycle-stepped scenario runs agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownOutcome {
    /// Packets delivered by surviving flows before the gate.
    pub survivors_before: u64,
    /// Packets delivered by surviving flows after the gate.
    pub survivors_after: u64,
    /// Packets delivered in total.
    pub total_delivered: u64,
    /// `true` if the gated island's switches were empty at gating time.
    pub drained_cleanly: bool,
}

/// Runs the scenario: all flows run normally until `stop_at_ns`; flows
/// terminating in the gated island are then deactivated; after `drain_ns`
/// the island is power-gated (panics if flits remain — which would indicate
/// a shutdown-unsafe topology); surviving flows keep running to the end.
///
/// For a correctly synthesized topology, the gated island's switches hold
/// no through-traffic from other islands — that is the paper's invariant —
/// so draining only needs the island's own flows to finish.
///
/// # Panics
///
/// Panics if `scenario.island` cannot be shut down under `vi` (always-on),
/// or if the topology routes foreign traffic through the gated island (the
/// very failure mode the synthesis prevents).
pub fn run_shutdown_scenario(
    spec: &SocSpec,
    vi: &ViAssignment,
    topo: &Topology,
    cfg: &SimConfig,
    scenario: &ShutdownScenario,
) -> ShutdownOutcome {
    assert!(
        vi.can_shutdown(scenario.island),
        "island {} is always-on",
        scenario.island
    );
    let mut sim = Simulator::new(spec, topo, cfg);

    // Phase 1: everything runs.
    let s1 = sim.run_for_ns(scenario.stop_at_ns);
    let survivor = |fid: vi_noc_soc::FlowId| {
        let f = spec.flow(fid);
        vi.island_of(f.src) != scenario.island && vi.island_of(f.dst) != scenario.island
    };
    let survivors_before: u64 = spec
        .flow_ids()
        .filter(|&fid| survivor(fid))
        .map(|fid| s1.flow(fid).delivered_packets)
        .sum();

    // Phase 2: stop flows that terminate in the island, then drain.
    // Draining is adaptive: the island's own traffic (plus any staged
    // backlog at saturated NIs) takes a workload-dependent time to flush,
    // so poll in chunks; a generous cap still catches genuine unsafety
    // (foreign traffic parked in the island would never drain). When the
    // island was congested, upstream domains may sit parked on its full
    // queues — every drain pop runs through the engine's wake lists
    // (`fire_wakes`), so the stalled senders re-arm at exactly the right
    // ticks and a parked element can never survive into the gate: parked
    // implies a non-empty (full) queue, which `gate_island` rejects.
    for fid in spec.flow_ids() {
        if !survivor(fid) {
            sim.deactivate_flow(fid);
        }
    }
    let mut waited = 0;
    while !sim.island_drained(scenario.island) && waited < 20 {
        sim.run_for_ns(scenario.drain_ns);
        waited += 1;
    }
    assert!(
        sim.island_drained(scenario.island),
        "island {} failed to drain after {}x{} ns — traffic is stuck there",
        scenario.island,
        waited,
        scenario.drain_ns
    );

    // Phase 3: gate. `gate_island` re-asserts the island's queues are
    // empty — foreign traffic stuck there would mean shutdown-unsafety.
    sim.gate_island(scenario.island);
    let drained_cleanly = true;

    // Phase 4: survivors continue.
    let s3 = sim.run_for_ns(scenario.post_gate_ns);
    let survivors_total: u64 = spec
        .flow_ids()
        .filter(|&fid| survivor(fid))
        .map(|fid| s3.flow(fid).delivered_packets)
        .sum();

    ShutdownOutcome {
        survivors_before,
        survivors_after: survivors_total - survivors_before,
        total_delivered: s3.total_delivered_packets(),
        drained_cleanly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    fn design(k: usize) -> (SocSpec, ViAssignment, Topology) {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        (soc, vi, topo)
    }

    #[test]
    fn surviving_traffic_continues_after_gating() {
        let (soc, vi, topo) = design(6);
        // Gate a shutdown-capable island that is not the memory island.
        let island = (0..vi.island_count())
            .find(|&j| vi.can_shutdown(j))
            .expect("some island can shut down");
        let outcome = run_shutdown_scenario(
            &soc,
            &vi,
            &topo,
            &SimConfig::default(),
            &ShutdownScenario {
                island,
                ..ShutdownScenario::default()
            },
        );
        assert!(outcome.drained_cleanly);
        assert!(
            outcome.survivors_after > 0,
            "surviving flows must keep delivering after the gate"
        );
        // Post-gate phase is 2x the pre-gate phase: survivors should deliver
        // at least as many packets after as before.
        assert!(
            outcome.survivors_after >= outcome.survivors_before,
            "throughput collapsed after gating: {} then {}",
            outcome.survivors_before,
            outcome.survivors_after
        );
    }

    #[test]
    fn every_gateable_island_can_be_gated() {
        let (soc, vi, topo) = design(6);
        for island in 0..vi.island_count() {
            if !vi.can_shutdown(island) {
                continue;
            }
            let outcome = run_shutdown_scenario(
                &soc,
                &vi,
                &topo,
                &SimConfig::default(),
                &ShutdownScenario {
                    island,
                    stop_at_ns: 15_000,
                    drain_ns: 8_000,
                    post_gate_ns: 20_000,
                },
            );
            assert!(outcome.drained_cleanly, "island {island}");
        }
    }

    #[test]
    #[should_panic(expected = "always-on")]
    fn gating_always_on_island_is_rejected() {
        let (soc, vi, topo) = design(6);
        let always_on = (0..vi.island_count())
            .find(|&j| !vi.can_shutdown(j))
            .expect("memory island is always-on");
        run_shutdown_scenario(
            &soc,
            &vi,
            &topo,
            &SimConfig::default(),
            &ShutdownScenario {
                island: always_on,
                ..ShutdownScenario::default()
            },
        );
    }
}
