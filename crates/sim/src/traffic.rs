//! Per-flow traffic generation.

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// Packet injection process of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Constant bit rate: one packet every `interval` exactly.
    Cbr,
    /// Poisson arrivals with the same mean rate (exponential gaps).
    Poisson,
}

impl fmt::Display for TrafficKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrafficKind::Cbr => "cbr",
            TrafficKind::Poisson => "poisson",
        })
    }
}

impl std::str::FromStr for TrafficKind {
    type Err = String;

    /// Parses the lowercase form `Display` emits (`"cbr"` / `"poisson"`),
    /// so traffic kinds round-trip through the scenario JSON format.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cbr" => Ok(TrafficKind::Cbr),
            "poisson" => Ok(TrafficKind::Poisson),
            other => Err(format!("unknown traffic kind '{other}'")),
        }
    }
}

/// Per-flow injection state.
#[derive(Debug, Clone)]
pub(crate) struct FlowGenerator {
    /// Mean gap between packet injections, ps.
    pub interval_ps: f64,
    /// Next injection time, ps.
    pub next_ps: f64,
    /// Whether the flow still injects (shutdown scenarios stop flows).
    pub active: bool,
    pub kind: TrafficKind,
}

impl FlowGenerator {
    /// Creates a generator for a flow of `bandwidth_bytes_per_s` with
    /// `packet_bytes`-sized packets, de-synchronized by `phase` in [0,1).
    pub fn new(
        bandwidth_bytes_per_s: f64,
        packet_bytes: f64,
        phase: f64,
        kind: TrafficKind,
    ) -> Self {
        let packets_per_s = bandwidth_bytes_per_s / packet_bytes;
        let interval_ps = 1e12 / packets_per_s.max(1e-3);
        FlowGenerator {
            interval_ps,
            next_ps: interval_ps * phase,
            active: true,
            kind,
        }
    }

    /// The next injection instant, ps — `None` once the flow is
    /// deactivated.
    ///
    /// This is what lets the batched engine treat injections as events
    /// instead of polling every generator every cycle: the scheduler takes
    /// the earliest value across a domain's flows as one component of the
    /// domain's next interaction tick.
    pub fn next_injection_ps(&self) -> Option<f64> {
        self.active.then_some(self.next_ps)
    }

    /// Advances to the next injection instant after an injection at
    /// `self.next_ps`.
    pub fn schedule_next(&mut self, rng: &mut StdRng) {
        let gap = match self.kind {
            TrafficKind::Cbr => self.interval_ps,
            TrafficKind::Poisson => {
                // Inverse-CDF exponential with mean `interval_ps`.
                let u: f64 = rng.random::<f64>().max(1e-12);
                -self.interval_ps * u.ln()
            }
        };
        self.next_ps += gap.max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cbr_interval_matches_bandwidth() {
        // 400 MB/s with 64 B packets = 6.25 M packets/s = 160 ns gap.
        let g = FlowGenerator::new(400e6, 64.0, 0.0, TrafficKind::Cbr);
        assert!((g.interval_ps - 160_000.0).abs() < 1.0);
    }

    #[test]
    fn cbr_is_perfectly_periodic() {
        let mut g = FlowGenerator::new(100e6, 64.0, 0.0, TrafficKind::Cbr);
        let mut rng = StdRng::seed_from_u64(1);
        let start = g.next_ps;
        g.schedule_next(&mut rng);
        g.schedule_next(&mut rng);
        assert!((g.next_ps - start - 2.0 * g.interval_ps).abs() < 1.0);
    }

    #[test]
    fn poisson_mean_approximates_interval() {
        let mut g = FlowGenerator::new(100e6, 64.0, 0.0, TrafficKind::Poisson);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let start = g.next_ps;
        for _ in 0..n {
            g.schedule_next(&mut rng);
        }
        let mean_gap = (g.next_ps - start) / n as f64;
        let err = (mean_gap - g.interval_ps).abs() / g.interval_ps;
        assert!(err < 0.05, "Poisson mean off by {:.1}%", err * 100.0);
    }

    #[test]
    fn kind_round_trips_through_from_str() {
        for k in [TrafficKind::Cbr, TrafficKind::Poisson] {
            assert_eq!(k.to_string().parse::<TrafficKind>(), Ok(k));
        }
        assert!("bursty".parse::<TrafficKind>().is_err());
    }

    #[test]
    fn phase_offsets_initial_injection() {
        let g = FlowGenerator::new(100e6, 64.0, 0.5, TrafficKind::Cbr);
        assert!((g.next_ps - g.interval_ps * 0.5).abs() < 1.0);
    }
}
