//! Figure/table regeneration harness for the DAC'09 reproduction.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (run with `cargo run -p vi-noc-bench --bin <name> --release`):
//!
//! | binary          | paper artifact | contents |
//! |-----------------|----------------|----------|
//! | `fig2_power`    | Figure 2       | NoC dynamic power vs island count, logical vs communication partitioning |
//! | `fig3_latency`  | Figure 3       | average zero-load latency vs island count |
//! | `fig4_topology` | Figure 4       | synthesized topology for the 6-VI logical D26 design |
//! | `fig5_floorplan`| Figure 5       | floorplan with NoC switches inserted |
//! | `tab1_overhead` | §5 text        | suite-wide power/area overhead of VI support (≈3 % / <0.5 %) |
//! | `tab2_leakage`  | §5 text        | leakage recovered by island shutdown per use case (≥25 %) |
//! | `tab3_runtime`  | §5 text        | synthesis wall-clock and scaling |
//!
//! This library hosts the shared sweep driver and the (eye-digitized,
//! approximate) reference series from the paper's plots; the comparison is
//! *shape-based* — who wins, by roughly what factor, where the curves sit
//! relative to the 1-island reference — not absolute mW.

#![warn(missing_docs)]

use vi_noc_core::{synthesize, DesignPoint, SynthesisConfig};
use vi_noc_soc::{partition, SocSpec, ViAssignment};

/// Core→island assignment strategy of the paper's §5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Function-based islands ("logical partitioning").
    Logical,
    /// Min-cut traffic clustering ("communication based partitioning").
    Communication,
}

impl Strategy {
    /// Human-readable label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Logical => "logical",
            Strategy::Communication => "communication",
        }
    }

    /// Produces the island assignment for `k` islands.
    pub fn partition(self, spec: &SocSpec, k: usize) -> Option<ViAssignment> {
        match self {
            Strategy::Logical => partition::logical_partition(spec, k).ok(),
            Strategy::Communication => partition::communication_partition(spec, k, 17).ok(),
        }
    }
}

/// One measured point of the island-count sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of voltage islands.
    pub islands: usize,
    /// Figure-2 power metric (switches + links + synchronizers), mW.
    pub power_mw: f64,
    /// NI-inclusive NoC dynamic power, mW.
    pub total_power_mw: f64,
    /// Average zero-load latency, cycles (Figure-3 metric).
    pub latency_cycles: f64,
    /// Switch count of the selected design point.
    pub switches: usize,
    /// Converter-crossing link count.
    pub crossings: usize,
}

/// The island counts of the paper's Figures 2–3 x-axis.
pub const PAPER_ISLAND_COUNTS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 26];

/// Approximate values digitized from the paper's Figure 2 (mW), for the
/// same island counts as [`PAPER_ISLAND_COUNTS`]. Shape reference only.
pub const PAPER_FIG2_LOGICAL_MW: [f64; 8] = [55.0, 60.0, 63.0, 66.0, 70.0, 74.0, 78.0, 98.0];
/// Communication-based partitioning series of Figure 2 (mW, digitized).
pub const PAPER_FIG2_COMM_MW: [f64; 8] = [55.0, 47.0, 43.0, 42.0, 44.0, 47.0, 50.0, 98.0];
/// Logical series of Figure 3 (cycles, digitized).
pub const PAPER_FIG3_LOGICAL_CYC: [f64; 8] = [3.4, 4.6, 5.2, 5.6, 5.9, 6.2, 6.4, 7.0];
/// Communication series of Figure 3 (cycles, digitized).
pub const PAPER_FIG3_COMM_CYC: [f64; 8] = [3.4, 3.9, 4.3, 4.6, 4.9, 5.3, 5.7, 7.0];

/// Synthesizes the best (minimum-power feasible) design point for `spec`
/// split into `k` islands by `strategy`.
pub fn best_point(spec: &SocSpec, strategy: Strategy, k: usize) -> Option<DesignPoint> {
    let vi = strategy.partition(spec, k)?;
    let space = synthesize(spec, &vi, &SynthesisConfig::default()).ok()?;
    space.min_power_point().cloned()
}

/// Runs the full island-count sweep of Figures 2–3 for one strategy.
///
/// Island counts that the strategy cannot realize (logical partitioning is
/// defined for 1–7 and n islands) are skipped.
pub fn island_sweep(spec: &SocSpec, strategy: Strategy) -> Vec<SweepPoint> {
    PAPER_ISLAND_COUNTS
        .iter()
        .filter_map(|&k| {
            let point = best_point(spec, strategy, k)?;
            Some(SweepPoint {
                islands: k,
                power_mw: point.metrics.power.fig2_power().mw(),
                total_power_mw: point.metrics.noc_dynamic_power().mw(),
                latency_cycles: point.metrics.avg_latency_cycles,
                switches: point.metrics.switch_count,
                crossings: point.metrics.crossing_count,
            })
        })
        .collect()
}

/// Formats a two-series comparison table (paper vs measured).
pub fn comparison_table(
    title: &str,
    unit: &str,
    measured: &[SweepPoint],
    value: impl Fn(&SweepPoint) -> f64,
    paper: &[f64],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>10}",
        "islands",
        format!("paper ({unit})"),
        format!("ours ({unit})"),
        "ours/ref"
    );
    let reference = measured.first().map(&value).unwrap_or(1.0);
    for p in measured {
        let idx = PAPER_ISLAND_COUNTS
            .iter()
            .position(|&k| k == p.islands)
            .unwrap_or(usize::MAX);
        let paper_v = paper.get(idx).copied();
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>14.2} {:>10.2}",
            p.islands,
            paper_v
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            value(p),
            value(p) / reference,
        );
    }
    out
}

/// Writes a simple CSV (`header` then rows) to `path`.
///
/// # Errors
///
/// Propagates I/O errors from file creation/writes.
pub fn write_csv(
    path: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::benchmarks;

    #[test]
    fn both_strategies_cover_the_sweep() {
        let soc = benchmarks::d26_mobile();
        let logi = island_sweep(&soc, Strategy::Logical);
        let comm = island_sweep(&soc, Strategy::Communication);
        assert_eq!(logi.len(), 8, "logical supports 1-7 and 26 islands");
        assert_eq!(comm.len(), 8);
    }

    #[test]
    fn figure2_shape_holds() {
        // The claims of the paper's Figure 2, checked on our measurements:
        // (a) communication-based partitioning dips below the 1-island
        //     reference at small island counts;
        // (b) logical partitioning pays an overhead at every island count;
        // (c) both strategies are most expensive at 26 islands.
        let soc = benchmarks::d26_mobile();
        let logi = island_sweep(&soc, Strategy::Logical);
        let comm = island_sweep(&soc, Strategy::Communication);
        let reference = logi[0].power_mw;
        assert!(
            comm[1..5].iter().any(|p| p.power_mw < reference),
            "communication partitioning should dip below the reference"
        );
        for p in &logi[1..] {
            assert!(
                p.power_mw > reference,
                "logical k={} should cost more than the reference",
                p.islands
            );
        }
        assert!(
            logi.last().unwrap().power_mw
                >= logi[..7].iter().map(|p| p.power_mw).fold(0.0, f64::max)
        );
    }

    #[test]
    fn figure3_shape_holds() {
        // Latency grows with island count and communication partitioning
        // stays at or below logical partitioning.
        let soc = benchmarks::d26_mobile();
        let logi = island_sweep(&soc, Strategy::Logical);
        let comm = island_sweep(&soc, Strategy::Communication);
        assert!(logi[0].latency_cycles < logi.last().unwrap().latency_cycles);
        assert!(comm[0].latency_cycles < comm.last().unwrap().latency_cycles);
        for (l, c) in logi.iter().zip(&comm) {
            assert!(
                c.latency_cycles <= l.latency_cycles + 0.75,
                "k={}: communication latency should not exceed logical by much",
                l.islands
            );
        }
        // Single-island latency sits near the paper's ~3.5 cycles.
        assert!(logi[0].latency_cycles > 2.5 && logi[0].latency_cycles < 4.5);
    }

    #[test]
    fn comparison_table_renders() {
        let soc = benchmarks::d12_auto();
        let points = vec![SweepPoint {
            islands: 1,
            power_mw: 10.0,
            total_power_mw: 12.0,
            latency_cycles: 3.0,
            switches: 2,
            crossings: 0,
        }];
        let t = comparison_table("t", "mW", &points, |p| p.power_mw, &PAPER_FIG2_LOGICAL_MW);
        assert!(t.contains("islands"));
        assert!(t.contains("10.00"));
        let _ = soc;
    }
}
