//! Ablation: the VCG weight parameter α (Definition 1).
//!
//! `h_ij = α·bw_ij/max_bw + (1−α)·min_lat/lat_ij` — α=1 partitions purely by
//! bandwidth, α=0 purely by latency urgency. The paper says α "can be set
//! experimentally or obtained as an input from the user, depending on the
//! importance of performance and power consumption objectives"; this binary
//! shows what that choice buys on the D26 design.

use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    let soc = benchmarks::d26_mobile();
    // Use the single-island configuration: its VCG holds all 26 cores, so
    // the min-cut grouping (and therefore alpha) decides the whole design.
    let vi = partition::logical_partition(&soc, 1).expect("1 island");
    println!("== ablation: VCG weight alpha (D26, 1 island, 26-core VCG) ==\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "alpha", "power (mW)", "lat (cyc)", "max lat", "points"
    );
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let cfg = SynthesisConfig {
            alpha,
            ..SynthesisConfig::default()
        };
        match synthesize(&soc, &vi, &cfg) {
            Ok(space) => {
                let best = space.min_power_point().expect("points");
                println!(
                    "{:>6.1} {:>12.1} {:>12.2} {:>12} {:>10}",
                    alpha,
                    best.metrics.noc_dynamic_power().mw(),
                    best.metrics.avg_latency_cycles,
                    best.metrics.max_latency_cycles,
                    space.points.len()
                );
            }
            Err(e) => println!("{alpha:>6.1} infeasible: {e}"),
        }
    }
    println!(
        "\nbandwidth-weighted grouping (high alpha) keeps hot pairs on shared\n\
         switches; latency-weighted grouping (low alpha) shortens urgent routes.\n\
         On D26 the result is robust across alpha: hot pairs also carry the\n\
         tightest latency constraints, so both objectives agree — consistent\n\
         with the paper treating alpha as a tunable left to the user."
    );
}
