//! T1 reproduction (§5 text): across the SoC benchmark suite, the cost of
//! supporting voltage-island shutdown is ≈3 % of *system* dynamic power and
//! <0.5 % of SoC area, versus shutdown-oblivious synthesis of the same SoC.

use vi_noc_core::{synthesize, synthesize_oblivious, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    println!("== T1: suite-wide overhead of VI-shutdown support ==");
    println!("paper: average ~3% of system dynamic power, <0.5% SoC area\n");
    println!(
        "{:<14} {:>4} {:>11} {:>11} {:>10} {:>10}",
        "benchmark", "VIs", "ref NoC mW", "VI NoC mW", "power ovh", "area ovh"
    );

    let cfg = SynthesisConfig::default();
    let mut power_ovh_sum = 0.0;
    let mut area_ovh_sum = 0.0;
    let mut n = 0.0;
    for (soc, k) in benchmarks::suite() {
        let oblivious = synthesize_oblivious(&soc, &cfg).expect("reference design");
        let ref_point = oblivious.space.min_power_point().expect("points");
        let vi = partition::logical_partition(&soc, k).expect("logical islands");
        let space = synthesize(&soc, &vi, &cfg).expect("VI-aware design");
        let vi_point = space.min_power_point().expect("points");

        let system_power =
            soc.total_core_dyn_power().mw() + ref_point.metrics.noc_dynamic_power().mw();
        let power_ovh = (vi_point.metrics.noc_dynamic_power().mw()
            - ref_point.metrics.noc_dynamic_power().mw())
            / system_power;
        let soc_area = soc.total_core_area().mm2() + ref_point.metrics.area.mm2();
        let area_ovh = (vi_point.metrics.area.mm2() - ref_point.metrics.area.mm2()) / soc_area;

        println!(
            "{:<14} {:>4} {:>11.1} {:>11.1} {:>9.2}% {:>9.2}%",
            soc.name(),
            k,
            ref_point.metrics.noc_dynamic_power().mw(),
            vi_point.metrics.noc_dynamic_power().mw(),
            power_ovh * 100.0,
            area_ovh * 100.0
        );
        power_ovh_sum += power_ovh;
        area_ovh_sum += area_ovh;
        n += 1.0;
    }

    let avg_power = power_ovh_sum / n * 100.0;
    let avg_area = area_ovh_sum / n * 100.0;
    println!("\naverage power overhead: {avg_power:.2}% of system dynamic power (paper: ~3%)");
    println!("average area overhead:  {avg_area:.2}% of SoC area (paper: <0.5%)");
    println!("shape checks:");
    println!(
        "  [{}] power overhead in low single digits",
        if avg_power < 8.0 { "ok" } else { "MISS" }
    );
    println!(
        "  [{}] area overhead below 1%",
        if avg_area < 1.0 { "ok" } else { "MISS" }
    );
}
