//! Ablation: the intermediate (always-on) NoC island.
//!
//! §3.2 makes the intermediate island optional — "our method will use the
//! intermediate island, only if the resources are available". This binary
//! quantifies what it buys: at high island counts the hub switches run out
//! of ports for direct links, and only indirect switches keep the design
//! space feasible or cheap.

use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    println!("== ablation: intermediate NoC island availability ==\n");
    println!(
        "{:>12} {:>8} {:>16} {:>16} {:>12} {:>12}",
        "benchmark", "islands", "with mid (mW)", "without (mW)", "mid points", "mid used"
    );
    let d26 = benchmarks::d26_mobile();
    let d36 = benchmarks::d36_tablet();
    let cases: Vec<(&str, &vi_noc_soc::SocSpec, usize)> = vec![
        ("d26", &d26, 2),
        ("d26", &d26, 4),
        ("d26", &d26, 6),
        ("d26", &d26, 26),
        // The binding case: at one island per core, the D36's dual-channel
        // memory hubs exceed their switch port budgets with direct links
        // alone — only indirect (intermediate) switches keep it feasible.
        ("d36", &d36, 36),
    ];
    for (name, soc, k) in cases {
        let Ok(vi) = partition::logical_partition(soc, k) else {
            continue;
        };
        let soc = soc.clone();
        let with_cfg = SynthesisConfig::default();
        let without_cfg = SynthesisConfig {
            allow_intermediate_vi: false,
            ..SynthesisConfig::default()
        };
        let with = synthesize(&soc, &vi, &with_cfg);
        let without = synthesize(&soc, &vi, &without_cfg);
        let fmt_power = |r: &Result<vi_noc_core::DesignSpace, _>| match r {
            Ok(s) => format!(
                "{:.1}",
                s.min_power_point()
                    .unwrap()
                    .metrics
                    .noc_dynamic_power()
                    .mw()
            ),
            Err(_) => "infeasible".to_string(),
        };
        let mid_stats = match &with {
            Ok(s) => {
                let n_mid = s
                    .points
                    .iter()
                    .filter(|p| p.topology.intermediate_switch_count() > 0)
                    .count();
                let used = s
                    .points
                    .iter()
                    .map(|p| p.topology.intermediate_switch_count())
                    .max()
                    .unwrap_or(0);
                (n_mid, used)
            }
            Err(_) => (0, 0),
        };
        println!(
            "{:>12} {:>8} {:>16} {:>16} {:>12} {:>12}",
            name,
            k,
            fmt_power(&with),
            fmt_power(&without),
            mid_stats.0,
            mid_stats.1
        );
    }
    // The structural case the paper designed the intermediate island for:
    // a hub-and-spoke SoC at one island per core. The hub switch would need
    // one direct link per partner — far beyond its port budget at the hub's
    // frequency — so only indirect switches in the always-on island keep the
    // design feasible.
    let star = star_soc(24);
    let k = star.core_count();
    let vi = partition::logical_partition(&star, k).expect("discrete islands");
    let with = synthesize(&star, &vi, &SynthesisConfig::default());
    let without = synthesize(
        &star,
        &vi,
        &SynthesisConfig {
            allow_intermediate_vi: false,
            max_intermediate_switches: 0,
            ..SynthesisConfig::default()
        },
    );
    println!(
        "{:>12} {:>8} {:>16} {:>16}",
        "star24-hub",
        k,
        match &with {
            Ok(s) => format!(
                "{:.1} (mid={})",
                s.min_power_point()
                    .unwrap()
                    .metrics
                    .noc_dynamic_power()
                    .mw(),
                s.min_power_point()
                    .unwrap()
                    .topology
                    .intermediate_switch_count()
            ),
            Err(_) => "infeasible".to_string(),
        },
        match &without {
            Ok(_) => "feasible".to_string(),
            Err(_) => "infeasible".to_string(),
        },
    );
    assert!(
        with.is_ok(),
        "star SoC must be feasible with the intermediate island"
    );
    assert!(
        without.is_err(),
        "star SoC should be port-starved without indirect switches"
    );

    println!(
        "\nthe intermediate island widens the design space (extra feasible points\n\
         with indirect switches) and becomes load-bearing when hub switches hit\n\
         their port budget — as in the star SoC's one-island-per-core design,\n\
         which is infeasible without it."
    );
}

/// A hub-and-spoke SoC: `n` client cores all talking to one shared memory.
fn star_soc(n: usize) -> vi_noc_soc::SocSpec {
    use vi_noc_soc::{CoreKind, CoreSpec, SocSpec, TrafficFlow};
    let mut s = SocSpec::new("star_hub");
    let hub = s.add_core(CoreSpec::new("hub_mem", CoreKind::Memory, 2.5, 30.0, 400.0).always_on());
    for i in 0..n {
        let c = s.add_core(CoreSpec::new(
            format!("client{i}"),
            CoreKind::Peripheral,
            0.5,
            5.0,
            100.0,
        ));
        s.add_flow(TrafficFlow::new(c, hub, 100.0, 24));
        s.add_flow(TrafficFlow::new(hub, c, 100.0, 24));
    }
    s
}
