//! Figure 5 reproduction: floorplan of the D26 SoC with NoC switches
//! inserted, wire lengths measured, and wire-accurate power recomputed.

use vi_noc_bench::{best_point, Strategy};
use vi_noc_core::{realize_on_floorplan, SynthesisConfig};
use vi_noc_floorplan::{render_ascii, FloorplanConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    let soc = benchmarks::d26_mobile();
    println!(
        "== Figure 5: floorplan with NoC inserted ({}, 6-VI logical) ==\n",
        soc.name()
    );
    let vi = partition::logical_partition(&soc, 6).expect("6 logical islands");
    let point = best_point(&soc, Strategy::Logical, 6).expect("feasible design");

    let fp_cfg = FloorplanConfig::default();
    let realized = realize_on_floorplan(&soc, &vi, &point, &fp_cfg, &SynthesisConfig::default());

    let names: Vec<&str> = soc.cores().iter().map(|c| c.name.as_str()).collect();
    println!(
        "{}",
        render_ascii(
            &realized.placement,
            &names,
            &realized.switch_positions,
            96,
            32
        )
    );

    let (dw, dh) = realized.placement.die();
    println!(
        "die: {dw:.2} x {dh:.2} mm ({:.1} mm^2), utilization {:.0}%",
        realized.placement.die_area_mm2(),
        realized.placement.utilization() * 100.0
    );
    let longest = realized
        .topology
        .links()
        .iter()
        .map(|l| l.length_mm)
        .fold(0.0, f64::max);
    println!(
        "links: {} total, longest wire {:.2} mm, {} miss unpipelined timing",
        realized.topology.links().len(),
        longest,
        realized.infeasible_links.len()
    );
    println!(
        "wire-accurate NoC power: {:.1} mW (estimated during synthesis: {:.1} mW)",
        realized.metrics.power.fig2_power().mw(),
        point.metrics.power.fig2_power().mw()
    );
    println!(
        "NoC area: {:.2} mm^2 = {:.2}% of core area",
        realized.metrics.area.mm2(),
        100.0 * realized.metrics.area.mm2() / soc.total_core_area().mm2()
    );
}
