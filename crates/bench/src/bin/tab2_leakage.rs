//! T2 reproduction (§5 text): the shutdown support pays for itself —
//! gating idle islands recovers leakage worth a large share of total power
//! ("even 25% or more reduction in overall system power" \[6\]).

use vi_noc_bench::{best_point, Strategy};
use vi_noc_core::{scenario_power, standard_scenarios};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    let soc = benchmarks::d26_mobile();
    println!(
        "== T2: leakage recovered by island shutdown ({}, 6-VI logical) ==",
        soc.name()
    );
    println!("paper: shutdown can cut >=25% of overall system power in idle-heavy use\n");

    let vi = partition::logical_partition(&soc, 6).expect("6 logical islands");
    let point = best_point(&soc, Strategy::Logical, 6).expect("feasible design");
    let cfg = vi_noc_core::SynthesisConfig::default();

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "scenario", "ungated mW", "gated mW", "saved mW", "savings", "VIs off"
    );
    let mut standby_savings = 0.0;
    for sc in standard_scenarios(&soc) {
        let r = scenario_power(&soc, &vi, &point.topology, &cfg, &sc);
        let saved = r.total_ungated.mw() - r.total().mw();
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.1} {:>9.1}% {:>8}",
            r.name,
            r.total_ungated.mw(),
            r.total().mw(),
            saved,
            r.savings_fraction() * 100.0,
            r.islands_off.len()
        );
        if r.name == "standby" {
            standby_savings = r.savings_fraction() * 100.0;
        }
    }
    println!("\nshape checks:");
    println!(
        "  [{}] idle-heavy scenario recovers >=20% of total power (ours {standby_savings:.1}%)",
        if standby_savings >= 20.0 {
            "ok"
        } else {
            "MISS"
        }
    );
}
