//! Ablation: NoC link data width.
//!
//! The paper fixes the link width ("without loss of generality, we fix the
//! data width of the NoC links to a user-defined value. Please note that it
//! could be varied in a range and more design points could be explored") —
//! this binary explores that range. Wider links let islands clock slower
//! (frequency = peak NI bandwidth / width) at the cost of area and per-port
//! capacitance.

use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("6 logical islands");
    println!("== ablation: link data width (D26, 6-VI logical) ==\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "width", "power (mW)", "lat (cyc)", "area (mm2)", "points"
    );
    for width in [16usize, 32, 64, 128] {
        let cfg = SynthesisConfig {
            link_width_bits: width,
            ..SynthesisConfig::default()
        };
        match synthesize(&soc, &vi, &cfg) {
            Ok(space) => {
                let best = space.min_power_point().expect("points");
                println!(
                    "{:>6}b {:>12.1} {:>12.2} {:>12.2} {:>12}",
                    width,
                    best.metrics.noc_dynamic_power().mw(),
                    best.metrics.avg_latency_cycles,
                    best.metrics.area.mm2(),
                    space.points.len()
                );
            }
            Err(e) => println!("{width:>6}b infeasible: {e}"),
        }
    }
    println!(
        "\nnarrow links force high island clocks (16b may be infeasible for the\n\
         SDRAM hub); wide links idle faster ports and pay silicon area."
    );
}
