//! T3 reproduction (§5 text): synthesis runtime. The paper explored all
//! design points "in a few hours on a 2 GHz Linux machine"; our from-scratch
//! implementation finishes the same exploration in seconds, and the
//! empirical scaling on synthetic SoCs stays polynomial.

use std::time::Instant;
use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_soc::{benchmarks, generate_synthetic, partition, SyntheticConfig};

fn main() {
    println!("== T3: synthesis runtime ==");
    println!("paper: full exploration of all benchmarks in a few hours (2 GHz, 2009)\n");

    let cfg = SynthesisConfig::default();
    println!(
        "{:<16} {:>6} {:>6} {:>5} {:>10} {:>8}",
        "benchmark", "cores", "flows", "VIs", "points", "time"
    );
    let mut total = std::time::Duration::ZERO;
    for (soc, k) in benchmarks::suite() {
        let vi = partition::logical_partition(&soc, k).expect("islands");
        let t0 = Instant::now();
        let space = synthesize(&soc, &vi, &cfg).expect("feasible");
        let dt = t0.elapsed();
        total += dt;
        println!(
            "{:<16} {:>6} {:>6} {:>5} {:>10} {:>7.2}s",
            soc.name(),
            soc.core_count(),
            soc.flow_count(),
            k,
            space.points.len(),
            dt.as_secs_f64()
        );
    }
    println!("suite total: {:.2}s\n", total.as_secs_f64());

    println!("scaling on synthetic SoCs (communication partitioning, 4 islands):");
    println!(
        "{:>6} {:>6} {:>10} {:>8}",
        "cores", "flows", "points", "time"
    );
    let mut last: Option<(f64, f64)> = None;
    for n in [16usize, 24, 32, 48, 64, 96] {
        let soc = generate_synthetic(&SyntheticConfig {
            n_cores: n,
            seed: 7,
            ..SyntheticConfig::default()
        });
        let Ok(vi) = vi_noc_soc::partition::communication_partition(&soc, 4, 3) else {
            continue;
        };
        let t0 = Instant::now();
        match synthesize(&soc, &vi, &cfg) {
            Ok(space) => {
                let dt = t0.elapsed().as_secs_f64();
                println!(
                    "{:>6} {:>6} {:>10} {:>7.2}s",
                    n,
                    soc.flow_count(),
                    space.points.len(),
                    dt
                );
                if let Some((pn, pt)) = last {
                    let exponent = (dt / pt).ln() / (n as f64 / pn).ln();
                    if dt > 0.05 {
                        println!("{:>31} empirical exponent ~{exponent:.1}", "");
                    }
                }
                last = Some((n as f64, dt));
            }
            Err(e) => println!("{:>6} {:>6} {:>10} {}", n, soc.flow_count(), "-", e),
        }
    }
}
