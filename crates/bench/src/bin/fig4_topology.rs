//! Figure 4 reproduction: the synthesized topology for the 6-VI logical
//! partitioning of the D26 SoC — switch inventory, link list, per-flow
//! routes, and a Graphviz dump for rendering.

use vi_noc_bench::{best_point, Strategy};
use vi_noc_core::{routes_table, to_dot, topology_summary, verify_design, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn main() {
    let soc = benchmarks::d26_mobile();
    println!(
        "== Figure 4: topology for the 6-VI logical partitioning ({}) ==\n",
        soc.name()
    );
    let vi = partition::logical_partition(&soc, 6).expect("6 logical islands");
    let point = best_point(&soc, Strategy::Logical, 6).expect("feasible design");

    println!("{}", topology_summary(&soc, &vi, &point.topology));
    println!("routes:");
    println!("{}", routes_table(&soc, &point.topology));

    let violations = verify_design(&soc, &vi, &point.topology, &SynthesisConfig::default());
    println!(
        "verification: {} ({} violations)",
        if violations.is_empty() {
            "clean"
        } else {
            "FAILED"
        },
        violations.len()
    );
    for v in &violations {
        println!("  {v}");
    }

    let dot = to_dot(&soc, &vi, &point.topology);
    let path = "fig4_topology.dot";
    match std::fs::write(path, &dot) {
        Ok(()) => println!("\ngraphviz topology written to {path} (render: dot -Tpdf)"),
        Err(e) => eprintln!("\ndot write failed: {e}"),
    }
}
