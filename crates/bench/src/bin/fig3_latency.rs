//! Figure 3 reproduction: average zero-load packet latency vs island count
//! for both partitioning strategies, including the 4-cycle bi-synchronous
//! converter penalty per island crossing.

use vi_noc_bench::{
    comparison_table, island_sweep, Strategy, PAPER_FIG3_COMM_CYC, PAPER_FIG3_LOGICAL_CYC,
};
use vi_noc_soc::benchmarks;

fn main() {
    let soc = benchmarks::d26_mobile();
    println!(
        "== Figure 3: VI count vs average zero-load latency ({}) ==\n",
        soc.name()
    );

    let logical = island_sweep(&soc, Strategy::Logical);
    let comm = island_sweep(&soc, Strategy::Communication);

    println!(
        "{}",
        comparison_table(
            "-- logical partitioning --",
            "cycles",
            &logical,
            |p| p.latency_cycles,
            &PAPER_FIG3_LOGICAL_CYC,
        )
    );
    println!(
        "{}",
        comparison_table(
            "-- communication-based partitioning --",
            "cycles",
            &comm,
            |p| p.latency_cycles,
            &PAPER_FIG3_COMM_CYC,
        )
    );

    println!("shape checks:");
    let start = logical[0].latency_cycles;
    println!(
        "  [{}] 1-island latency near the paper's ~3.5 cycles (ours {:.2})",
        if (2.5..4.5).contains(&start) {
            "ok"
        } else {
            "MISS"
        },
        start
    );
    let mono = logical[0].latency_cycles < logical.last().unwrap().latency_cycles
        && comm[0].latency_cycles < comm.last().unwrap().latency_cycles;
    println!(
        "  [{}] latency grows with island count (crossing penalty accumulates)",
        if mono { "ok" } else { "MISS" }
    );
    let comm_below = logical
        .iter()
        .zip(&comm)
        .all(|(l, c)| c.latency_cycles <= l.latency_cycles + 0.75);
    println!(
        "  [{}] communication partitioning stays at or below logical",
        if comm_below { "ok" } else { "MISS" }
    );

    let rows = logical.iter().zip(&comm).map(|(l, c)| {
        format!(
            "{},{:.3},{:.3}",
            l.islands, l.latency_cycles, c.latency_cycles
        )
    });
    let path = "fig3_latency.csv";
    match vi_noc_bench::write_csv(path, "islands,logical_cycles,communication_cycles", rows) {
        Ok(()) => println!("\nseries written to {path}"),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
