//! Figure 2 reproduction: NoC dynamic power vs voltage-island count for
//! logical and communication-based partitioning of the D26 mobile SoC.
//!
//! Power is the paper's metric — switches + links + synchronizers (§5) —
//! taken from the minimum-power feasible design point of each sweep
//! configuration. Compare shapes, not absolute mW (our component models are
//! calibrated stand-ins for ×pipesLite; see DESIGN.md §4).

use vi_noc_bench::{
    comparison_table, island_sweep, Strategy, PAPER_FIG2_COMM_MW, PAPER_FIG2_LOGICAL_MW,
};
use vi_noc_soc::benchmarks;

fn main() {
    let soc = benchmarks::d26_mobile();
    println!(
        "== Figure 2: VI count vs NoC dynamic power ({}) ==\n",
        soc.name()
    );

    let logical = island_sweep(&soc, Strategy::Logical);
    let comm = island_sweep(&soc, Strategy::Communication);

    println!(
        "{}",
        comparison_table(
            "-- logical partitioning --",
            "mW",
            &logical,
            |p| p.power_mw,
            &PAPER_FIG2_LOGICAL_MW,
        )
    );
    println!(
        "{}",
        comparison_table(
            "-- communication-based partitioning --",
            "mW",
            &comm,
            |p| p.power_mw,
            &PAPER_FIG2_COMM_MW,
        )
    );

    let reference = logical[0].power_mw;
    let comm_min = comm[1..comm.len() - 1]
        .iter()
        .map(|p| p.power_mw)
        .fold(f64::INFINITY, f64::min);
    println!("shape checks:");
    println!(
        "  [{}] communication dips below the 1-island reference ({:.1} vs {:.1} mW)",
        if comm_min < reference { "ok" } else { "MISS" },
        comm_min,
        reference
    );
    let logical_overhead_ok = logical[1..].iter().all(|p| p.power_mw > reference);
    println!(
        "  [{}] logical partitioning pays an overhead at every island count",
        if logical_overhead_ok { "ok" } else { "MISS" }
    );
    let max26 = logical.last().unwrap().power_mw;
    println!(
        "  [{}] 26 islands is the most expensive point ({:.1} mW, {:.2}x reference)",
        if max26 >= logical.iter().map(|p| p.power_mw).fold(0.0, f64::max) {
            "ok"
        } else {
            "MISS"
        },
        max26,
        max26 / reference
    );

    let rows = logical
        .iter()
        .zip(&comm)
        .map(|(l, c)| format!("{},{:.2},{:.2}", l.islands, l.power_mw, c.power_mw));
    let path = "fig2_power.csv";
    match vi_noc_bench::write_csv(path, "islands,logical_mw,communication_mw", rows) {
        Ok(()) => println!("\nseries written to {path}"),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
