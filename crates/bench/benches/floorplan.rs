//! Criterion benchmarks: floorplanning and design realization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vi_noc_core::{realize_on_floorplan, synthesize, SynthesisConfig};
use vi_noc_floorplan::{floorplan, FloorplanConfig, Module, Net};
use vi_noc_soc::{benchmarks, partition};

fn bench_floorplan_sa(c: &mut Criterion) {
    let soc = benchmarks::d26_mobile();
    let modules: Vec<Module> = soc
        .cores()
        .iter()
        .map(|core| Module::new(core.name.clone(), core.area.mm2(), 0))
        .collect();
    let nets: Vec<Net> = soc
        .flows()
        .iter()
        .map(|f| Net::two_pin(f.src.index(), f.dst.index(), f.bandwidth.mbps()))
        .collect();
    let cfg = FloorplanConfig {
        iterations: 5_000,
        ..FloorplanConfig::default()
    };
    c.bench_function("floorplan_d26_5k_moves", |b| {
        b.iter(|| floorplan(black_box(&modules), black_box(&nets), &cfg))
    });
}

fn bench_realization(c: &mut Criterion) {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg).expect("feasible");
    let point = space.min_power_point().unwrap().clone();
    let fp_cfg = FloorplanConfig {
        iterations: 5_000,
        ..FloorplanConfig::default()
    };
    let mut group = c.benchmark_group("realize");
    group.sample_size(10);
    group.bench_function("realize_d26_6vi", |b| {
        b.iter(|| realize_on_floorplan(black_box(&soc), &vi, &point, &fp_cfg, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_floorplan_sa, bench_realization);
criterion_main!(benches);
