//! Dynamic-sweep clustering bench: the d26 frontier crossed with a
//! 16-config sim grid, filled three ways — the naive per-(point, config)
//! double loop, the exact-mode engine (dedup only), and the clustered
//! engine (one simulation per cluster) — with the byte-identity guard
//! asserted before anything is timed, and a JSON datapoint for the perf
//! trajectory (`BENCH_DYNSWEEP_JSON`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use vi_noc_core::SynthesisConfig;
use vi_noc_dynsweep::{run_dynsweep, run_naive, DynSweepInput, Mode, SimAxes};
use vi_noc_sim::{ShutdownScenario, SimConfig, TrafficKind};
use vi_noc_soc::{benchmarks, partition};
use vi_noc_sweep::{
    frontier_json, parse_frontier_file, run_shard, GridConfig, GridDescriptor, Shard, SweepGrid,
};

fn fast_mode() -> bool {
    std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The sim-config grid: 4 loads × 2 traffic kinds × 2 schedules = 16
/// cells per frontier point. Loads 0.5/0.9 share a half-width bucket, so
/// clustering has real prune opportunities without being trivial.
fn bench_axes(gateable: usize) -> SimAxes {
    SimAxes {
        loads: vec![0.5, 0.9, 1.2, 1.4],
        traffic: vec![TrafficKind::Cbr, TrafficKind::Poisson],
        schedules: vec![
            None,
            Some(ShutdownScenario {
                island: gateable,
                stop_at_ns: 2_000,
                drain_ns: 1_500,
                post_gate_ns: 3_000,
            }),
        ],
        horizon_ns: 8_000,
    }
}

/// Median wall time of `samples` runs of `f`.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f()); // warm-up, untimed
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

fn bench_dynsweep_cluster(_c: &mut Criterion) {
    let spec = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&spec, 6).expect("partition");
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.1],
        max_intermediate: 2,
    };
    let grid = SweepGrid::build(&spec, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, spec.name(), "logical:6", cfg.seed);
    let run = run_shard(&spec, &vi, &grid, Shard::full(), &cfg);
    let file = frontier_json(&desc, &run);
    let frontier = parse_frontier_file(&file).expect("frontier");
    let gateable = (0..vi.island_count())
        .find(|&i| vi.can_shutdown(i))
        .expect("a gateable island");
    let axes = bench_axes(gateable);
    let input = DynSweepInput {
        spec: &spec,
        vi: &vi,
        cfg: &cfg,
        sim: &SimConfig::default(),
        grid: &grid,
        partition: "logical:6",
        frontier: &frontier,
    };

    // The headline invariant guards the artifact before anything is
    // timed: exact-mode bytes == the naive double loop's.
    let naive_table = run_naive(&input, &axes).expect("naive");
    let exact = run_dynsweep(&input, &axes, Mode::Exact).expect("exact");
    assert_eq!(
        exact.table, naive_table,
        "exact mode must be byte-identical to the naive double loop"
    );
    let clustered = run_dynsweep(&input, &axes, Mode::Clustered).expect("clustered");
    assert_eq!(clustered.cells, exact.cells);
    assert!(
        clustered.simulated <= exact.simulated,
        "clustering must never simulate more cells than exact mode"
    );

    let n = if fast_mode() { 3 } else { 7 };
    let naive_s = median_secs(n, || run_naive(&input, &axes).expect("naive"));
    let exact_s = median_secs(n, || {
        run_dynsweep(&input, &axes, Mode::Exact).expect("exact")
    });
    let clustered_s = median_secs(n, || {
        run_dynsweep(&input, &axes, Mode::Clustered).expect("clustered")
    });

    let sim_reduction = exact.simulated as f64 / clustered.simulated.max(1) as f64;
    let speedup = naive_s / clustered_s.max(1e-12);
    println!(
        "dynsweep_cluster/naive_double_loop  median {:>12.3?}   ({n} samples, {} points x {} configs = {} cells)",
        Duration::from_secs_f64(naive_s),
        frontier.entries.len(),
        axes.cells_per_point(),
        exact.cells
    );
    println!(
        "dynsweep_cluster/exact_mode         median {:>12.3?}   ({} simulated)",
        Duration::from_secs_f64(exact_s),
        exact.simulated
    );
    println!(
        "dynsweep_cluster/clustered_mode     median {:>12.3?}   ({} simulated, {:.2}x fewer sims, {:.2}x wall vs naive)",
        Duration::from_secs_f64(clustered_s),
        clustered.simulated,
        sim_reduction,
        speedup
    );

    let json = format!(
        "{{\n  \"bench\": \"dynsweep_cluster\",\n  \"soc\": \"d26_mobile\",\n  \"islands\": 6,\n  \
         \"history\": [\n    {{\n      \"pr\": null,\n      \"samples\": {n},\n      \
         \"frontier_points\": {},\n      \"cells_per_point\": {},\n      \"cells\": {},\n      \
         \"simulated\": {{ \"exact\": {}, \"clustered\": {} }},\n      \
         \"naive_ms\": {:.3},\n      \"exact_ms\": {:.3},\n      \"clustered_ms\": {:.3},\n      \
         \"sim_reduction\": {:.2},\n      \"speedup_clustered_vs_naive\": {:.2},\n      \
         \"note\": \"fresh measurement of the working tree; exact-mode table asserted \
         byte-identical to the naive double loop before timing\"\n    }}\n  ]\n}}\n",
        frontier.entries.len(),
        axes.cells_per_point(),
        exact.cells,
        exact.simulated,
        clustered.simulated,
        naive_s * 1e3,
        exact_s * 1e3,
        clustered_s * 1e3,
        sim_reduction,
        speedup,
    );
    let path = std::env::var("BENCH_DYNSWEEP_JSON")
        .unwrap_or_else(|_| "BENCH_dynsweep_cluster.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("dynsweep_cluster: wrote {path}"),
        Err(e) => eprintln!("dynsweep_cluster: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_dynsweep_cluster);
criterion_main!(benches);
