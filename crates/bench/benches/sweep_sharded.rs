//! Sharded-sweep benchmarks: the streaming shard runner on a fine grid,
//! single process vs a 3-shard split, with a JSON datapoint for the perf
//! trajectory (`BENCH_sweep.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{benchmarks, partition};
use vi_noc_sweep::{
    frontier_json, frontier_seeds, merge_checkpoints, parse_frontier_file, run_shard,
    run_shard_pruned, shard_checkpoint_json, windows_from_frontier, GridConfig, GridDescriptor,
    RefineParams, Shard, SweepGrid,
};

fn fast_mode() -> bool {
    std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn samples(full: usize) -> usize {
    if fast_mode() {
        2
    } else {
        full
    }
}

/// The benchmark grid: d26 at the paper's island count, with the boost and
/// frequency-plan axes opened — ~27x the classic sweep's candidate count.
fn fine_grid_cfg() -> GridConfig {
    GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.12],
        max_intermediate: 4,
    }
}

fn bench_shard_runner(c: &mut Criterion) {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig::default();
    let grid = SweepGrid::build(&soc, &vi, &cfg, &fine_grid_cfg());

    let mut group = c.benchmark_group("sweep_sharded");
    group.sample_size(samples(10));
    group.bench_function("d26_fine_full", |b| {
        b.iter(|| run_shard(black_box(&soc), black_box(&vi), &grid, Shard::full(), &cfg))
    });
    group.bench_function("d26_fine_shard_0_of_3", |b| {
        b.iter(|| {
            run_shard(
                black_box(&soc),
                black_box(&vi),
                &grid,
                Shard::new(0, 3).unwrap(),
                &cfg,
            )
        })
    });
    group.finish();
}

/// Median wall time of `samples` runs of `f`.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f()); // warm-up, untimed
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

fn bench_shards_vs_single(_c: &mut Criterion) {
    // The acceptance measurement: the same fine d26 grid streamed by one
    // process vs 3 shard processes plus `merge`. Everything is measured
    // single-threaded so the numbers isolate the sharding overhead (shard
    // processes on separate machines would overlap their `max_shard` times;
    // this container has 1 CPU, so the parallel win must be read as
    // `single / (max_shard + merge)`).
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let grid = SweepGrid::build(&soc, &vi, &cfg, &fine_grid_cfg());
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:6", cfg.seed);

    let n = if fast_mode() { 3 } else { 9 };
    let single_s = median_secs(n, || run_shard(&soc, &vi, &grid, Shard::full(), &cfg));
    let shard_s: Vec<f64> = (0..3)
        .map(|i| {
            median_secs(n, || {
                run_shard(&soc, &vi, &grid, Shard::new(i, 3).unwrap(), &cfg)
            })
        })
        .collect();
    let files: Vec<String> = (0..3)
        .map(|i| {
            shard_checkpoint_json(
                &desc,
                &run_shard(&soc, &vi, &grid, Shard::new(i, 3).unwrap(), &cfg),
            )
        })
        .collect();
    let merge_s = median_secs(n, || merge_checkpoints(&files).expect("merge"));

    // Guard the artifact: the merged frontier must equal the unsharded one.
    let merged = merge_checkpoints(&files).expect("merge");
    let direct = frontier_json(&desc, &run_shard(&soc, &vi, &grid, Shard::full(), &cfg));
    assert_eq!(merged, direct, "sharded frontier must be bit-identical");

    let max_shard_s = shard_s.iter().cloned().fold(0.0f64, f64::max);
    let sum_shard_s: f64 = shard_s.iter().sum();
    println!(
        "sweep_sharded/single_full_grid    median {:>12.3?}   ({n} samples, {} candidates)",
        Duration::from_secs_f64(single_s),
        grid.num_candidates()
    );
    println!(
        "sweep_sharded/max_of_3_shards     median {:>12.3?}   (+ merge {:>9.3?})",
        Duration::from_secs_f64(max_shard_s),
        Duration::from_secs_f64(merge_s),
    );
    let json = format!(
        "{{\n  \"bench\": \"sweep_sharded\",\n  \"soc\": \"{}\",\n  \"islands\": 6,\n  \
         \"mode\": \"single-threaded\",\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"samples\": {n},\n      \"grid\": {{ \"max_boost\": 1, \"freq_scales\": [1, 1.12], \
         \"max_intermediate\": 4, \"candidates\": {} }},\n      \
         \"single_full_grid_ms\": {:.3},\n      \"shard_ms\": [{:.3}, {:.3}, {:.3}],\n      \
         \"merge_ms\": {:.3},\n      \"shard_total_ms\": {:.3},\n      \
         \"projected_3proc_speedup\": {:.2},\n      \"note\": \"fresh measurement of the \
         working tree; shards run as separate processes in production, so wall time is \
         max(shard) + merge; merged frontier asserted bit-identical to the unsharded run\"\n    \
         }}\n  ]\n}}\n",
        soc.name(),
        grid.num_candidates(),
        single_s * 1e3,
        shard_s[0] * 1e3,
        shard_s[1] * 1e3,
        shard_s[2] * 1e3,
        merge_s * 1e3,
        sum_shard_s * 1e3,
        single_s / (max_shard_s + merge_s).max(1e-12),
    );
    let path = std::env::var("BENCH_SWEEP_SHARDED_JSON")
        .unwrap_or_else(|_| "BENCH_sweep_sharded.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sweep_sharded: wrote {path}"),
        Err(e) => eprintln!("sweep_sharded: could not write {path}: {e}"),
    }
}

fn bench_refine_prune(_c: &mut Criterion) {
    // The refinement acceptance measurement: the exhaustive fine d26 grid
    // vs the frontier-guided pipeline (coarse paper grid -> refinement
    // windows around the surviving points -> slack-pruned windowed fine
    // sweep). The pipeline must evaluate at most half the chains of the
    // exhaustive run; refine_windows.rs separately proves the refined
    // frontier is byte-identical wherever the windows cover the grid.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let fine_cfg = fine_grid_cfg();
    let fine = SweepGrid::build(&soc, &vi, &cfg, &fine_cfg);
    let params = RefineParams {
        boost_radius: 1,
        base_radius: 0,
        scale_window: 0.25,
    };

    let pipeline = || {
        let coarse_grid = SweepGrid::build(&soc, &vi, &cfg, &GridConfig::default());
        let desc = GridDescriptor::for_grid(&coarse_grid, soc.name(), "logical:6", cfg.seed);
        let coarse = run_shard_pruned(&soc, &vi, &coarse_grid, Shard::full(), &cfg);
        let file = frontier_json(&desc, &coarse);
        let parsed = parse_frontier_file(&file).expect("coarse frontier");
        let seeds = frontier_seeds(&parsed).expect("frontier seeds");
        let windows = windows_from_frontier(&seeds, &fine_cfg, &params);
        let refined_grid = SweepGrid::build_windowed(&soc, &vi, &cfg, &fine_cfg, windows);
        let refined = run_shard_pruned(&soc, &vi, &refined_grid, Shard::full(), &cfg);
        (coarse, refined)
    };

    let n = if fast_mode() { 3 } else { 9 };
    let exhaustive_s = median_secs(n, || run_shard(&soc, &vi, &fine, Shard::full(), &cfg));
    let pipeline_s = median_secs(n, &pipeline);

    let exhaustive = run_shard(&soc, &vi, &fine, Shard::full(), &cfg);
    let (coarse, refined) = pipeline();
    let pipeline_chains = coarse.stats.chains + refined.stats.chains;
    let reduction = exhaustive.stats.chains as f64 / pipeline_chains.max(1) as f64;
    assert!(
        pipeline_chains * 2 <= exhaustive.stats.chains,
        "pipeline must evaluate at most half the exhaustive chains \
         ({pipeline_chains} vs {})",
        exhaustive.stats.chains
    );

    println!(
        "sweep_refine_prune/exhaustive     median {:>12.3?}   ({} chains)",
        Duration::from_secs_f64(exhaustive_s),
        exhaustive.stats.chains
    );
    println!(
        "sweep_refine_prune/pipeline       median {:>12.3?}   ({} coarse + {} refined \
         chains, {} slack-skipped, {:.2}x reduction)",
        Duration::from_secs_f64(pipeline_s),
        coarse.stats.chains,
        refined.stats.chains,
        coarse.pruned_chains + refined.pruned_chains,
        reduction
    );
    let json = format!(
        "{{\n  \"bench\": \"sweep_refine_prune\",\n  \"soc\": \"{}\",\n  \"islands\": 6,\n  \
         \"mode\": \"single-threaded\",\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"samples\": {n},\n      \"fine_grid\": {{ \"max_boost\": 1, \"freq_scales\": \
         [1, 1.12], \"max_intermediate\": 4, \"chains\": {} }},\n      \
         \"refine_params\": {{ \"boost_radius\": 1, \"base_radius\": 0, \"scale_window\": \
         0.25 }},\n      \"exhaustive_ms\": {:.3},\n      \"pipeline_ms\": {:.3},\n      \
         \"coarse_chains\": {},\n      \"refined_chains\": {},\n      \
         \"slack_skipped_chains\": {},\n      \"chain_reduction\": {:.2},\n      \
         \"speedup\": {:.2},\n      \"note\": \"fresh measurement of the working tree; \
         coarse paper grid -> refinement windows -> slack-pruned windowed fine sweep; \
         in-window frontier asserted byte-identical by crates/sweep/tests/refine_windows.rs\"\
         \n    }}\n  ]\n}}\n",
        soc.name(),
        exhaustive.stats.chains,
        exhaustive_s * 1e3,
        pipeline_s * 1e3,
        coarse.stats.chains,
        refined.stats.chains,
        coarse.pruned_chains + refined.pruned_chains,
        reduction,
        exhaustive_s / pipeline_s.max(1e-12),
    );
    let path = std::env::var("BENCH_SWEEP_REFINE_JSON")
        .unwrap_or_else(|_| "BENCH_sweep_refine.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sweep_refine_prune: wrote {path}"),
        Err(e) => eprintln!("sweep_refine_prune: could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_shard_runner,
    bench_shards_vs_single,
    bench_refine_prune
);
criterion_main!(benches);
