//! Criterion macro-benchmarks: full topology synthesis (Algorithm 1) per
//! benchmark SoC — the paper's headline computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vi_noc_core::{synthesize, SweepPlan, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

fn bench_synthesis_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    for (soc, k) in benchmarks::suite() {
        let vi = partition::logical_partition(&soc, k).expect("islands");
        group.bench_with_input(
            BenchmarkId::from_parameter(soc.name().to_string()),
            &(soc, vi),
            |b, (soc, vi)| {
                b.iter(|| {
                    synthesize(black_box(soc), black_box(vi), &SynthesisConfig::default())
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

fn bench_sweep_point(c: &mut Criterion) {
    // One 26-island D26 synthesis: the most constrained configuration of
    // Figure 2's x-axis (hub switches port-starved, intermediate island hot).
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 26).expect("islands");
    let mut group = c.benchmark_group("synthesize_extremes");
    group.sample_size(10);
    group.bench_function("d26_26_islands", |b| {
        b.iter(|| synthesize(black_box(&soc), black_box(&vi), &SynthesisConfig::default()))
    });
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    // The acceptance benchmark for the staged pipeline: the same D26 sweep
    // with the candidate fan-out sequential vs rayon-parallel. Both modes
    // produce identical design spaces; only wall-clock differs.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let mut group = c.benchmark_group("synthesize_d26_modes");
    group.sample_size(10);
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let cfg = SynthesisConfig {
            parallel,
            ..SynthesisConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| synthesize(black_box(&soc), black_box(&vi), &cfg).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_sweep_plan(c: &mut Criterion) {
    // Stage 1 alone (frequency plan + VCGs + candidate enumeration): the
    // serial prologue of the pipeline. Its share of the full `synthesize`
    // time bounds the parallel speedup via Amdahl's law.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let mut group = c.benchmark_group("sweep_plan");
    group.bench_function("d26_6vi_build", |b| {
        b.iter(|| SweepPlan::build(black_box(&soc), black_box(&vi), &SynthesisConfig::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthesis_suite,
    bench_sweep_point,
    bench_parallel_speedup,
    bench_sweep_plan
);
criterion_main!(benches);
