//! Criterion macro-benchmarks: full topology synthesis (Algorithm 1) per
//! benchmark SoC — the paper's headline computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use vi_noc_core::{evaluate_candidate, synthesize, CandidateOutcome, SweepPlan, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition};

/// `BENCH_FAST=1` trims every group's sample count so the CI smoke job
/// (which only needs the `sweep_cold_vs_warm` JSON artifact) stays cheap.
fn fast_mode() -> bool {
    std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn samples(full: usize) -> usize {
    if fast_mode() {
        2
    } else {
        full
    }
}

fn bench_synthesis_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(samples(10));
    for (soc, k) in benchmarks::suite() {
        let vi = partition::logical_partition(&soc, k).expect("islands");
        group.bench_with_input(
            BenchmarkId::from_parameter(soc.name().to_string()),
            &(soc, vi),
            |b, (soc, vi)| {
                b.iter(|| {
                    synthesize(black_box(soc), black_box(vi), &SynthesisConfig::default())
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

fn bench_sweep_point(c: &mut Criterion) {
    // One 26-island D26 synthesis: the most constrained configuration of
    // Figure 2's x-axis (hub switches port-starved, intermediate island hot).
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 26).expect("islands");
    let mut group = c.benchmark_group("synthesize_extremes");
    group.sample_size(samples(10));
    group.bench_function("d26_26_islands", |b| {
        b.iter(|| synthesize(black_box(&soc), black_box(&vi), &SynthesisConfig::default()))
    });
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    // The acceptance benchmark for the staged pipeline: the same D26 sweep
    // with the candidate fan-out sequential vs rayon-parallel. Both modes
    // produce identical design spaces; only wall-clock differs.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let mut group = c.benchmark_group("synthesize_d26_modes");
    group.sample_size(samples(10));
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let cfg = SynthesisConfig {
            parallel,
            ..SynthesisConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| synthesize(black_box(&soc), black_box(&vi), &cfg).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_sweep_plan(c: &mut Criterion) {
    // Stage 1 alone (frequency plan + VCGs + candidate enumeration): the
    // serial prologue of the pipeline. Its share of the full `synthesize`
    // time bounds the parallel speedup via Amdahl's law.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let mut group = c.benchmark_group("sweep_plan");
    group.sample_size(samples(20));
    group.bench_function("d26_6vi_build", |b| {
        b.iter(|| SweepPlan::build(black_box(&soc), black_box(&vi), &SynthesisConfig::default()))
    });
    group.finish();
}

/// Median wall time of `samples` single-threaded runs of `f`.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f()); // warm-up, untimed
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

fn bench_cold_vs_warm(_c: &mut Criterion) {
    // The acceptance benchmark for warm-start incremental allocation: the
    // same single-threaded D26 sweep evaluated cold (one fresh allocation
    // context per candidate, the pre-warm-start behavior) vs warm (shared
    // per-sweep-index context + warm-started candidate chains, what
    // `synthesize` does). Both produce the identical design space; only
    // wall-clock differs.
    //
    // Besides the criterion report, the measurement is emitted as
    // `BENCH_sweep.json` (path overridable via `BENCH_SWEEP_JSON`; CI
    // uploads it) so the sweep's perf trajectory is recorded across PRs.
    // `BENCH_FAST=1` trims the sample count for smoke runs.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let sweep = SweepPlan::build(&soc, &vi, &cfg);

    let cold = || {
        let mut feasible = 0usize;
        for cand in sweep.candidates() {
            if let CandidateOutcome::Feasible(_) = evaluate_candidate(&soc, &vi, &sweep, cand, &cfg)
            {
                feasible += 1;
            }
        }
        feasible
    };
    let warm = || synthesize(&soc, &vi, &cfg).expect("feasible").points.len();

    // Measured once with `median_secs` (not additionally through a
    // criterion group, which would re-run both sweeps for a second report
    // of the same numbers).
    let n = if fast_mode() { 3 } else { 15 };
    let cold_s = median_secs(n, cold);
    let warm_s = median_secs(n, warm);
    println!(
        "sweep_cold_vs_warm/cold_per_candidate    median {:>12.3?}   ({n} samples)",
        std::time::Duration::from_secs_f64(cold_s)
    );
    println!(
        "sweep_cold_vs_warm/warm_chain            median {:>12.3?}   ({n} samples)",
        std::time::Duration::from_secs_f64(warm_s)
    );
    // Same schema as the committed repo-root BENCH_sweep.json: a `history`
    // array of measurements. A fresh run emits one entry with `"pr": null`;
    // appending it (with the PR number filled in) to the committed file
    // extends the trajectory without any shape translation.
    let json = format!(
        "{{\n  \"bench\": \"sweep_cold_vs_warm\",\n  \"soc\": \"{}\",\n  \"islands\": 6,\n  \
         \"mode\": \"single-threaded\",\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"samples\": {n},\n      \"cold_per_candidate_ms\": {:.3},\n      \
         \"warm_chain_ms\": {:.3},\n      \"speedup\": {:.2},\n      \"note\": \"fresh \
         measurement of the working tree; cold = one fresh allocation context per candidate \
         (pre-warm-start behavior), warm = shared per-sweep-index context with warm-started \
         candidate chains, as synthesize runs it; identical design spaces\"\n    }}\n  ]\n}}\n",
        soc.name(),
        cold_s * 1e3,
        warm_s * 1e3,
        cold_s / warm_s.max(1e-12),
    );
    let path = std::env::var("BENCH_SWEEP_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sweep_cold_vs_warm: wrote {path}"),
        Err(e) => eprintln!("sweep_cold_vs_warm: could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_synthesis_suite,
    bench_sweep_point,
    bench_parallel_speedup,
    bench_sweep_plan,
    bench_cold_vs_warm
);
criterion_main!(benches);
