//! Criterion benchmarks: flit-level simulation throughput, including the
//! acceptance benchmark for the event-batched engine (batched vs
//! cycle-stepped wall clock on long-horizon workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use vi_noc_core::{synthesize, SynthesisConfig, Topology, TopologyBuilder};
use vi_noc_models::{Bandwidth, Frequency};
use vi_noc_sim::{SimConfig, Simulator, TrafficKind};
use vi_noc_soc::{benchmarks, partition, CoreKind, CoreSpec, SocSpec, TrafficFlow};

/// `BENCH_FAST=1` trims sample counts and horizons so the CI smoke job
/// stays cheap.
fn fast_mode() -> bool {
    std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn samples(full: usize) -> usize {
    if fast_mode() {
        2
    } else {
        full
    }
}

fn design(soc: &SocSpec, k: usize) -> Topology {
    let vi = partition::logical_partition(soc, k).expect("islands");
    let space = synthesize(soc, &vi, &SynthesisConfig::default()).expect("feasible");
    space.min_power_point().unwrap().topology.clone()
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20us");
    group.sample_size(samples(10));
    for k in [1usize, 6] {
        let soc = benchmarks::d26_mobile();
        let topo = design(&soc, k);
        for (label, batching) in [("stepped", false), ("batched", true)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("d26_{k}vi_{label}")),
                &(&soc, &topo),
                |b, (soc, topo)| {
                    b.iter(|| {
                        let mut sim = Simulator::new(
                            black_box(soc),
                            black_box(topo),
                            &SimConfig {
                                traffic: TrafficKind::Cbr,
                                load_factor: 0.8,
                                batching,
                                ..SimConfig::default()
                            },
                        );
                        sim.run_for_ns(20_000)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Median wall time of `samples` runs of `f`.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f()); // warm-up, untimed
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

/// The acceptance benchmark for sim-engine event batching: long-horizon
/// D26 simulations in the regimes the simulator is actually used for —
///
/// * `light_load` — a 2 ms soak at 5 % load, the latency-vs-load regime
///   where per-cycle stepping wastes almost every tick;
/// * `zero_load_probe` — one flow active, everything else silent, the
///   Figure-3 zero-load-latency measurement pattern;
/// * `loaded` — 80 % load, where events are dense and batching must at
///   least break even.
///
/// Both modes produce bit-identical `SimStats` (asserted here besides the
/// equivalence suite); only wall clock differs. The measurement is emitted
/// as `BENCH_sim.json` (path override: `BENCH_SIM_JSON`) in the same
/// history-entry schema as the committed repo-root `BENCH_sweep.json`, so
/// fresh datapoints can be appended to the trajectory verbatim.
fn bench_long_horizon(_c: &mut Criterion) {
    // Self-timed (median-of-N), not a criterion group, so honor cargo
    // bench's positional filter by hand: `-- simulate_20us` must not drag
    // the multi-second long-horizon suite along with it.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if !filters.is_empty()
        && !filters
            .iter()
            .any(|f| "sim_long_horizon".contains(f.as_str()))
    {
        return;
    }
    let soc = benchmarks::d26_mobile();
    let topo = design(&soc, 6);
    let horizon_ns: u64 = if fast_mode() { 100_000 } else { 2_000_000 };
    // Odd counts keep the middle sample a true median (2 would report the
    // slower run).
    let samples = if fast_mode() { 3 } else { 5 };

    let run = |cfg: &SimConfig, probe: bool| {
        let mut sim = Simulator::new(&soc, &topo, cfg);
        if probe {
            let probe_flow = soc.flow_ids().next().unwrap();
            for fid in soc.flow_ids() {
                if fid != probe_flow {
                    sim.deactivate_flow(fid);
                }
            }
        }
        sim.run_for_ns(horizon_ns)
    };

    let scenarios: [(&str, SimConfig, bool); 3] = [
        (
            "light_load",
            SimConfig {
                load_factor: 0.05,
                ..SimConfig::default()
            },
            false,
        ),
        (
            "zero_load_probe",
            SimConfig {
                packet_bytes: 4,
                ..SimConfig::default()
            },
            true,
        ),
        (
            "loaded",
            SimConfig {
                load_factor: 0.8,
                ..SimConfig::default()
            },
            false,
        ),
    ];

    let mut json_entries = Vec::new();
    for (name, cfg, probe) in &scenarios {
        let stepped_cfg = SimConfig {
            batching: false,
            ..cfg.clone()
        };
        let batched_cfg = SimConfig {
            batching: true,
            ..cfg.clone()
        };
        assert_eq!(
            run(&batched_cfg, *probe),
            run(&stepped_cfg, *probe),
            "{name}: batched and stepped stats must be bit-identical"
        );
        let stepped_s = median_secs(samples, || run(&stepped_cfg, *probe));
        let batched_s = median_secs(samples, || run(&batched_cfg, *probe));
        let speedup = stepped_s / batched_s.max(1e-12);
        println!(
            "sim_long_horizon/{name:<16} stepped {:>9.1?}  batched {:>9.1?}  speedup {speedup:.2}x",
            Duration::from_secs_f64(stepped_s),
            Duration::from_secs_f64(batched_s),
        );
        json_entries.push(format!(
            "      \"{name}\": {{ \"stepped_ms\": {:.2}, \"batched_ms\": {:.2}, \"speedup\": {:.2} }}",
            stepped_s * 1e3,
            batched_s * 1e3,
            speedup
        ));
    }

    // The history entry is self-describing (bench/soc/islands/horizon_ns
    // inside it, matching the committed BENCH_sweep.json schema) so it can
    // be appended to the trajectory verbatim.
    let json = format!(
        "{{\n  \"bench\": \"sim_long_horizon\",\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"bench\": \"sim_long_horizon\",\n      \"soc\": \"d26_mobile\",\n      \"islands\": 6,\n      \
         \"horizon_ns\": {horizon_ns},\n      \"samples\": {samples},\n{}\n    }}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path = std::env::var("BENCH_SIM_JSON").unwrap_or_else(|_| "BENCH_sim.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sim_long_horizon: wrote {path}"),
        Err(e) => eprintln!("sim_long_horizon: could not write {path}: {e}"),
    }
}

/// One flow crossing three islands in series with the sink island slowest —
/// the backpressure-bottleneck fixture of `crates/sim/tests/wake_edges.rs`:
/// every queue along the chain is full almost all the time, so the wake
/// lists (not event density) decide how often each domain ticks.
fn bottleneck_chain() -> (SocSpec, Topology) {
    let mut spec = SocSpec::new("chain");
    let c0 = spec.add_core(CoreSpec::new("src", CoreKind::Cpu, 1.0, 10.0, 1000.0));
    let c1 = spec.add_core(CoreSpec::new("dst", CoreKind::Memory, 1.0, 10.0, 250.0));
    let f0 = spec.add_flow(TrafficFlow::new(c0, c1, 3200.0, 64));

    let freqs: Vec<Frequency> = [1000.0, 600.0, 250.0, 1000.0]
        .iter()
        .map(|&m| Frequency::from_mhz(m))
        .collect();
    let mut b = TopologyBuilder::new(&spec, 3, freqs);
    let sw0 = b.add_switch("sw0", 0, vec![c0]);
    let sw1 = b.add_switch("sw1", 1, vec![]);
    let sw2 = b.add_switch("sw2", 2, vec![c1]);
    let cap = Bandwidth::from_mbps(4000.0);
    b.open_link(sw0, sw1, cap);
    b.open_link(sw1, sw2, cap);
    b.set_route(&spec, f0, vec![sw0, sw1, sw2]);
    (spec, b.build())
}

/// The acceptance benchmark for backpressure wake lists: saturated and
/// oversubscribed workloads, where the pre-wake-list engine busy-polled
/// blocked domains every cycle —
///
/// * `d26_load_{0.9,1.0,1.2}` — the full D26 design at and past its
///   saturation knee. Nearly every domain still moves real flits almost
///   every cycle here (the intermediate island carries all inter-island
///   traffic), so the honest win is the deterministic ~1.4x tick reduction
///   and a modest wall-clock edge — the wake lists' job in this regime is
///   to stop batching from *losing* to stepping;
/// * `bottleneck_chain_qcap{1,2}` — a three-domain chain throttled by a
///   slow sink, the regime the wake lists exist for: whole domains stall on
///   full queues and sleep until the exact unblocking pop (>= 4x wall
///   clock, ~11x fewer ticks at queue capacity 1).
///
/// Every scenario asserts batched == stepped `SimStats` bit-for-bit before
/// timing, and reports the deterministic tick ratio next to the wall-clock
/// speedup. Emitted as `BENCH_sim_saturated.json` (path override:
/// `BENCH_SIM_SATURATED_JSON`) in the `BENCH_sweep.json` history-entry
/// schema, like the `sim_long_horizon` emitter.
fn bench_saturated(_c: &mut Criterion) {
    // Self-timed like `bench_long_horizon`; honor the positional filter.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if !filters.is_empty() && !filters.iter().any(|f| "sim_saturated".contains(f.as_str())) {
        return;
    }
    let d26 = benchmarks::d26_mobile();
    let d26_topo = design(&d26, 6);
    let (chain_soc, chain_topo) = bottleneck_chain();
    let horizon_ns: u64 = if fast_mode() { 20_000 } else { 200_000 };
    let samples = if fast_mode() { 3 } else { 5 };

    struct Scenario<'a> {
        name: &'a str,
        soc: &'a SocSpec,
        topo: &'a Topology,
        cfg: SimConfig,
    }
    let mut scenarios = Vec::new();
    for load in [0.9, 1.0, 1.2] {
        scenarios.push(Scenario {
            name: match load {
                x if x < 1.0 => "d26_load_0.9",
                x if x > 1.0 => "d26_load_1.2",
                _ => "d26_load_1.0",
            },
            soc: &d26,
            topo: &d26_topo,
            cfg: SimConfig {
                traffic: TrafficKind::Cbr,
                load_factor: load,
                ..SimConfig::default()
            },
        });
    }
    for qcap in [1usize, 2] {
        scenarios.push(Scenario {
            name: if qcap == 1 {
                "bottleneck_chain_qcap1"
            } else {
                "bottleneck_chain_qcap2"
            },
            soc: &chain_soc,
            topo: &chain_topo,
            cfg: SimConfig {
                queue_capacity: qcap,
                ..SimConfig::default()
            },
        });
    }

    let mut json_entries = Vec::new();
    for s in &scenarios {
        let run = |batching: bool| {
            let mut sim = Simulator::new(
                s.soc,
                s.topo,
                &SimConfig {
                    batching,
                    ..s.cfg.clone()
                },
            );
            let stats = sim.run_for_ns(horizon_ns);
            (stats, sim.ticks_processed())
        };
        let (stats_b, ticks_b) = run(true);
        let (stats_s, ticks_s) = run(false);
        assert_eq!(
            stats_b, stats_s,
            "{}: batched and stepped stats must be bit-identical",
            s.name
        );
        let tick_ratio = ticks_s as f64 / ticks_b.max(1) as f64;
        let stepped_s = median_secs(samples, || run(false));
        let batched_s = median_secs(samples, || run(true));
        let speedup = stepped_s / batched_s.max(1e-12);
        println!(
            "sim_saturated/{:<22} stepped {:>9.1?}  batched {:>9.1?}  speedup {speedup:.2}x  tick_ratio {tick_ratio:.2}x",
            s.name,
            Duration::from_secs_f64(stepped_s),
            Duration::from_secs_f64(batched_s),
        );
        json_entries.push(format!(
            "      \"{}\": {{ \"stepped_ms\": {:.2}, \"batched_ms\": {:.2}, \"speedup\": {:.2}, \"tick_ratio\": {:.2} }}",
            s.name,
            stepped_s * 1e3,
            batched_s * 1e3,
            speedup,
            tick_ratio
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_saturated\",\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"bench\": \"sim_saturated\",\n      \"soc\": \"d26_mobile + bottleneck_chain\",\n      \
         \"islands\": 6,\n      \"horizon_ns\": {horizon_ns},\n      \"samples\": {samples},\n{}\n    }}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path = std::env::var("BENCH_SIM_SATURATED_JSON")
        .unwrap_or_else(|_| "BENCH_sim_saturated.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sim_saturated: wrote {path}"),
        Err(e) => eprintln!("sim_saturated: could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_simulation,
    bench_long_horizon,
    bench_saturated
);
criterion_main!(benches);
