//! Criterion benchmarks: cycle-level simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_sim::{SimConfig, Simulator, TrafficKind};
use vi_noc_soc::{benchmarks, partition};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20us");
    group.sample_size(10);
    for k in [1usize, 6] {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, k).expect("islands");
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).expect("feasible");
        let topo = space.min_power_point().unwrap().topology.clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d26_{k}vi")),
            &(soc, topo),
            |b, (soc, topo)| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        black_box(soc),
                        black_box(topo),
                        &SimConfig {
                            traffic: TrafficKind::Cbr,
                            load_factor: 0.8,
                            ..SimConfig::default()
                        },
                    );
                    sim.run_for_ns(20_000)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
