//! Fleet scaling bench: the fine d26 grid folded by an in-process
//! coordinator with 1, 2 and 4 local workers, against the single-threaded
//! streaming run — wall clock plus the byte-identity guard, with a JSON
//! datapoint for the perf trajectory (`BENCH_FLEET_JSON`).
//!
//! Workers force sequential chain evaluation ([`WorkerOpts::seq`]), so any
//! speed-up here comes from the worker *count* — the thing the fleet adds —
//! not from the synthesis-level rayon parallelism that already existed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vi_noc_core::SynthesisConfig;
use vi_noc_fleet::{
    spawn_local_workers, start_coordinator, FleetConfig, JobResolver, ResolvedJob, WorkerOpts,
};
use vi_noc_soc::{benchmarks, partition};
use vi_noc_sweep::{frontier_json, run_shard, GridConfig, GridDescriptor, Shard, SweepGrid};

fn fast_mode() -> bool {
    std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The benchmark grid: d26 at the paper's island count with the boost and
/// frequency-plan axes opened — the same grid `sweep_sharded` measures.
fn fine_grid_cfg() -> GridConfig {
    GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.12],
        max_intermediate: 4,
    }
}

/// Resolves the one job this bench sweeps. Resolution runs once per
/// coordinator and once per worker, exactly as it would across machines.
struct FineD26Resolver;

impl JobResolver for FineD26Resolver {
    fn resolve(&self, payload: &str) -> Result<ResolvedJob, String> {
        if payload != "d26:fine" {
            return Err(format!("unknown bench job '{payload}'"));
        }
        let spec = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&spec, 6).map_err(|e| e.to_string())?;
        let cfg = SynthesisConfig {
            parallel: false,
            ..SynthesisConfig::default()
        };
        let grid = SweepGrid::build(&spec, &vi, &cfg, &fine_grid_cfg());
        let desc = GridDescriptor::for_grid(&grid, spec.name(), "logical:6", cfg.seed);
        Ok(ResolvedJob {
            spec,
            vi,
            cfg,
            grid,
            desc,
            prune: false,
        })
    }
}

/// One complete fleet session: coordinator up, `workers` local workers,
/// one submission, teardown. Returns the folded frontier file.
fn fleet_session(workers: usize) -> String {
    let resolver: Arc<dyn JobResolver> = Arc::new(FineD26Resolver);
    let handle = start_coordinator("127.0.0.1:0", Arc::clone(&resolver), FleetConfig::default())
        .expect("bind");
    let pool = spawn_local_workers(handle.addr(), resolver, workers, WorkerOpts::default());
    let folded = handle.submit("d26:fine").expect("fleet job");
    handle.shutdown();
    for worker in pool {
        worker.join().expect("worker thread").expect("worker");
    }
    folded
}

/// Median wall time of `samples` runs of `f`.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f()); // warm-up, untimed
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

fn bench_fleet_scale(_c: &mut Criterion) {
    let job = FineD26Resolver.resolve("d26:fine").expect("resolve");
    let direct = frontier_json(
        &job.desc,
        &run_shard(&job.spec, &job.vi, &job.grid, Shard::full(), &job.cfg),
    );

    // The headline invariant guards the artifact before anything is timed.
    for workers in [1usize, 2, 4] {
        assert_eq!(
            fleet_session(workers),
            direct,
            "fleet frontier with {workers} worker(s) must be byte-identical"
        );
    }

    let n = if fast_mode() { 3 } else { 7 };
    let single_s = median_secs(n, || {
        run_shard(&job.spec, &job.vi, &job.grid, Shard::full(), &job.cfg)
    });
    let fleet_s: Vec<f64> = [1usize, 2, 4]
        .iter()
        .map(|&w| median_secs(n, || fleet_session(w)))
        .collect();

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let speedup_4 = fleet_s[0] / fleet_s[2].max(1e-12);
    println!(
        "fleet_scale/single_thread_direct  median {:>12.3?}   ({n} samples, {} chains, {cpus} CPU(s))",
        Duration::from_secs_f64(single_s),
        job.grid.num_chains()
    );
    for (i, &w) in [1usize, 2, 4].iter().enumerate() {
        println!(
            "fleet_scale/{w}_worker(s)          median {:>12.3?}   (vs 1 worker: {:.2}x)",
            Duration::from_secs_f64(fleet_s[i]),
            fleet_s[0] / fleet_s[i].max(1e-12)
        );
    }
    if cpus >= 4 {
        assert!(
            speedup_4 >= 1.5,
            "4 workers on a {cpus}-CPU machine must be at least 1.5x over 1 worker, got {speedup_4:.2}x"
        );
    } else {
        println!(
            "fleet_scale: only {cpus} CPU(s) available — scaling assertion skipped; \
             4-worker speedup measured {speedup_4:.2}x (expect >=1.5x on 4 cores)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"soc\": \"d26_mobile\",\n  \"islands\": 6,\n  \
         \"cpus\": {cpus},\n  \"history\": [\n    {{\n      \"pr\": null,\n      \
         \"samples\": {n},\n      \"grid\": {{ \"max_boost\": 1, \"freq_scales\": [1, 1.12], \
         \"max_intermediate\": 4, \"chains\": {} }},\n      \
         \"single_thread_direct_ms\": {:.3},\n      \
         \"fleet_ms\": {{ \"1_worker\": {:.3}, \"2_workers\": {:.3}, \"4_workers\": {:.3} }},\n      \
         \"speedup_4_workers\": {:.2},\n      \"note\": \"fresh measurement of the working \
         tree; loopback coordinator + seq workers, frontier asserted byte-identical to the \
         unsharded run at every worker count; on 1 CPU the fleet numbers measure pure \
         protocol overhead, not scaling\"\n    }}\n  ]\n}}\n",
        job.grid.num_chains(),
        single_s * 1e3,
        fleet_s[0] * 1e3,
        fleet_s[1] * 1e3,
        fleet_s[2] * 1e3,
        speedup_4,
    );
    let path =
        std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| "BENCH_fleet_scale.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("fleet_scale: wrote {path}"),
        Err(e) => eprintln!("fleet_scale: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet_scale);
criterion_main!(benches);
