//! Criterion benchmarks: synthesis scaling with SoC size (the empirical
//! side of the paper's O(V^2 E^2 ln V) complexity claim, T3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_soc::{generate_synthetic, partition, SyntheticConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_scaling");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let soc = generate_synthetic(&SyntheticConfig {
            n_cores: n,
            seed: 7,
            ..SyntheticConfig::default()
        });
        let Ok(vi) = partition::communication_partition(&soc, 4, 3) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(soc, vi),
            |b, (soc, vi)| {
                b.iter(|| {
                    let _ = synthesize(black_box(soc), black_box(vi), &SynthesisConfig::default());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
