//! Criterion micro-benchmarks: k-way min-cut partitioning (the inner loop
//! of Algorithm 1's step 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vi_noc_graph::{partition_kway, PartitionConfig, SymGraph};
use vi_noc_soc::{benchmarks, generate_synthetic, SyntheticConfig};

fn clustered_graph(clusters: usize, size: usize) -> SymGraph {
    let n = clusters * size;
    let mut g = SymGraph::new(n);
    for c in 0..clusters {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                g.add_edge(base + i, base + j, 10.0);
            }
        }
        if c + 1 < clusters {
            g.add_edge(base, base + size, 1.0);
        }
    }
    g
}

fn bench_partition_kway(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_kway");
    for &(clusters, size) in &[(4usize, 8usize), (4, 16), (8, 16)] {
        let g = clustered_graph(clusters, size);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", clusters, size)),
            &g,
            |b, g| b.iter(|| partition_kway(black_box(g), clusters, &PartitionConfig::default())),
        );
    }
    group.finish();
}

fn bench_traffic_graph_partition(c: &mut Criterion) {
    let d26 = benchmarks::d26_mobile().traffic_graph();
    c.bench_function("partition_d26_traffic_4way", |b| {
        b.iter(|| partition_kway(black_box(&d26), 4, &PartitionConfig::default()))
    });
    let big = generate_synthetic(&SyntheticConfig {
        n_cores: 96,
        ..SyntheticConfig::default()
    })
    .traffic_graph();
    c.bench_function("partition_synthetic96_6way", |b| {
        b.iter(|| partition_kway(black_box(&big), 6, &PartitionConfig::default()))
    });
}

criterion_group!(benches, bench_partition_kway, bench_traffic_graph_partition);
criterion_main!(benches);
