//! Criterion benchmarks: flow lifting and verification on synthesized
//! designs (steps 14-17 of Algorithm 1 and the shutdown checker).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vi_noc_core::{
    inter_switch_flows, synthesize, verify_design, verify_shutdown_safety, SynthesisConfig,
};
use vi_noc_soc::{benchmarks, partition};

fn bench_flow_lifting(c: &mut Criterion) {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).expect("feasible");
    let topo = &space.min_power_point().unwrap().topology;
    c.bench_function("inter_switch_flows_d26", |b| {
        b.iter(|| inter_switch_flows(black_box(&soc), black_box(topo)))
    });
}

fn bench_verification(c: &mut Criterion) {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).expect("islands");
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg).expect("feasible");
    let topo = &space.min_power_point().unwrap().topology;
    c.bench_function("verify_design_d26", |b| {
        b.iter(|| verify_design(black_box(&soc), black_box(&vi), black_box(topo), &cfg))
    });
    c.bench_function("verify_shutdown_safety_d26", |b| {
        b.iter(|| verify_shutdown_safety(black_box(&soc), black_box(&vi), black_box(topo)))
    });
}

criterion_group!(benches, bench_flow_lifting, bench_verification);
criterion_main!(benches);
