//! Property-based tests for the floorplanner.

use proptest::prelude::*;
use vi_noc_floorplan::{floorplan, FloorplanConfig, Module, Net};

fn arb_modules() -> impl Strategy<Value = Vec<Module>> {
    proptest::collection::vec((0.2f64..6.0, 0usize..4), 1..14).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (area, island))| Module::new(format!("m{i}"), area, island))
            .collect()
    })
}

fn quick_cfg(seed: u64) -> FloorplanConfig {
    FloorplanConfig {
        seed,
        iterations: 1_500,
        ..FloorplanConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Slicing floorplans never overlap and never leak outside the die.
    #[test]
    fn placements_are_legal(modules in arb_modules(), seed in 0u64..500) {
        let plan = floorplan(&modules, &[], &quick_cfg(seed));
        prop_assert_eq!(plan.rect_count(), modules.len());
        prop_assert!(plan.is_overlap_free());
        let (dw, dh) = plan.die();
        for r in plan.rects() {
            prop_assert!(r.x >= -1e-9 && r.y >= -1e-9);
            prop_assert!(r.x + r.w <= dw + 1e-9);
            prop_assert!(r.y + r.h <= dh + 1e-9);
        }
    }

    /// The die can never be smaller than the sum of module areas, and
    /// annealing keeps utilization above a floor.
    #[test]
    fn area_bounds(modules in arb_modules(), seed in 0u64..500) {
        let plan = floorplan(&modules, &[], &quick_cfg(seed));
        let total: f64 = modules.iter().map(Module::area_mm2).sum();
        prop_assert!(plan.die_area_mm2() >= total - 1e-9);
        prop_assert!(
            plan.utilization() > 0.3,
            "utilization {} too low for {} modules",
            plan.utilization(),
            modules.len()
        );
    }

    /// Same seed, same floorplan; module rotation preserves area exactly.
    #[test]
    fn deterministic_and_area_preserving(modules in arb_modules()) {
        let a = floorplan(&modules, &[], &quick_cfg(9));
        let b = floorplan(&modules, &[], &quick_cfg(9));
        prop_assert_eq!(&a, &b);
        let placed: f64 = a.rects().iter().map(|r| r.area()).sum();
        let total: f64 = modules.iter().map(Module::area_mm2).sum();
        prop_assert!((placed - total).abs() < 1e-6);
    }

    /// Nets never break legality, whatever their weights.
    #[test]
    fn nets_dont_break_legality(
        modules in arb_modules(),
        weights in proptest::collection::vec(0.1f64..100.0, 1..8),
    ) {
        let n = modules.len();
        let nets: Vec<Net> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Net::two_pin(i % n, (i * 7 + 1) % n, w))
            .filter(|net| net.pins[0] != net.pins[1])
            .collect();
        let plan = floorplan(&modules, &nets, &quick_cfg(3));
        prop_assert!(plan.is_overlap_free());
    }
}
