//! Placement result: rectangles on a die.

use crate::slicing::{Module, PolishElem, PolishExpr};

/// An axis-aligned placed rectangle, in mm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Center point of the rectangle.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Returns `true` if the interiors of `self` and `other` intersect.
    pub fn overlaps(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x + EPS < other.x + other.w
            && other.x + EPS < self.x + self.w
            && self.y + EPS < other.y + other.h
            && other.y + EPS < self.y + self.h
    }

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// A complete floorplan: one placed rectangle per module plus the die
/// bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    rects: Vec<Rect>,
    die_w: f64,
    die_h: f64,
}

impl Placement {
    /// Number of placed rectangles.
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// Placed rectangle of module `idx`.
    pub fn rect(&self, idx: usize) -> Rect {
        self.rects[idx]
    }

    /// All rectangles, indexed by module.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Center of module `idx` — the attachment point for NoC wiring.
    pub fn center(&self, idx: usize) -> (f64, f64) {
        self.rects[idx].center()
    }

    /// Die dimensions `(width, height)` in mm.
    pub fn die(&self) -> (f64, f64) {
        (self.die_w, self.die_h)
    }

    /// Die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.die_w * self.die_h
    }

    /// Fraction of the die covered by modules (0..1).
    pub fn utilization(&self) -> f64 {
        if self.die_area_mm2() <= 0.0 {
            return 0.0;
        }
        self.rects.iter().map(Rect::area).sum::<f64>() / self.die_area_mm2()
    }

    /// Returns `true` if no two modules overlap (always holds for slicing
    /// floorplans; exposed for property tests).
    pub fn is_overlap_free(&self) -> bool {
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].overlaps(&self.rects[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Evaluates a Polish expression into a placement.
///
/// Slicing semantics: `a b V` places `b` to the right of `a`; `a b H`
/// stacks `b` on top of `a`. Subtree bounding boxes are the max/sum of the
/// child dimensions (no shape curves — modules may rotate via the annealer's
/// rotation flags instead).
pub(crate) fn evaluate(expr: &PolishExpr, modules: &[Module]) -> Placement {
    #[derive(Debug)]
    enum Node {
        Leaf(usize),
        Cut(Box<Node>, Box<Node>, PolishElem),
    }

    fn dims(node: &Node, expr: &PolishExpr, modules: &[Module]) -> (f64, f64) {
        match node {
            Node::Leaf(i) => expr.module_shape(modules, *i),
            Node::Cut(a, b, op) => {
                let (aw, ah) = dims(a, expr, modules);
                let (bw, bh) = dims(b, expr, modules);
                match op {
                    PolishElem::V => (aw + bw, ah.max(bh)),
                    PolishElem::H => (aw.max(bw), ah + bh),
                    PolishElem::Operand(_) => unreachable!("cut with operand op"),
                }
            }
        }
    }

    fn assign(
        node: &Node,
        x: f64,
        y: f64,
        expr: &PolishExpr,
        modules: &[Module],
        out: &mut [Rect],
    ) {
        match node {
            Node::Leaf(i) => {
                let (w, h) = expr.module_shape(modules, *i);
                out[*i] = Rect { x, y, w, h };
            }
            Node::Cut(a, b, op) => {
                let (aw, ah) = dims(a, expr, modules);
                assign(a, x, y, expr, modules, out);
                match op {
                    PolishElem::V => assign(b, x + aw, y, expr, modules, out),
                    PolishElem::H => assign(b, x, y + ah, expr, modules, out),
                    PolishElem::Operand(_) => unreachable!(),
                }
            }
        }
    }

    // Build the tree with an operand stack.
    let mut stack: Vec<Node> = Vec::new();
    for e in &expr.elems {
        match e {
            PolishElem::Operand(i) => stack.push(Node::Leaf(*i)),
            op => {
                let b = stack.pop().expect("valid polish expression");
                let a = stack.pop().expect("valid polish expression");
                stack.push(Node::Cut(Box::new(a), Box::new(b), *op));
            }
        }
    }
    let root = stack.pop().expect("non-empty expression");
    assert!(stack.is_empty(), "expression must reduce to a single tree");

    let (die_w, die_h) = dims(&root, expr, modules);
    let mut rects = vec![
        Rect {
            x: 0.0,
            y: 0.0,
            w: 0.0,
            h: 0.0
        };
        modules.len()
    ];
    assign(&root, 0.0, 0.0, expr, modules, &mut rects);
    Placement {
        rects,
        die_w,
        die_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicing::Module;

    fn unit_modules(n: usize) -> Vec<Module> {
        (0..n)
            .map(|i| Module::new(format!("m{i}"), 1.0, 0))
            .collect()
    }

    #[test]
    fn two_module_vertical_cut() {
        let modules = unit_modules(2);
        let expr = PolishExpr {
            elems: vec![
                PolishElem::Operand(0),
                PolishElem::Operand(1),
                PolishElem::V,
            ],
            rotated: vec![false; 2],
        };
        let p = evaluate(&expr, &modules);
        assert_eq!(p.die(), (2.0, 1.0));
        assert_eq!(p.rect(1).x, 1.0);
        assert!(p.is_overlap_free());
        assert!((p.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_module_horizontal_cut() {
        let modules = unit_modules(2);
        let expr = PolishExpr {
            elems: vec![
                PolishElem::Operand(0),
                PolishElem::Operand(1),
                PolishElem::H,
            ],
            rotated: vec![false; 2],
        };
        let p = evaluate(&expr, &modules);
        assert_eq!(p.die(), (1.0, 2.0));
        assert_eq!(p.rect(1).y, 1.0);
    }

    #[test]
    fn initial_expression_places_everything() {
        let modules = unit_modules(7);
        let expr = PolishExpr::initial(7);
        let p = evaluate(&expr, &modules);
        assert_eq!(p.rect_count(), 7);
        assert!(p.is_overlap_free());
        assert!(p.utilization() > 0.0);
        // All modules inside the die.
        let (dw, dh) = p.die();
        for r in p.rects() {
            assert!(r.x >= -1e-9 && r.y >= -1e-9);
            assert!(r.x + r.w <= dw + 1e-9 && r.y + r.h <= dh + 1e-9);
        }
    }

    #[test]
    fn rect_overlap_detection() {
        let a = Rect {
            x: 0.0,
            y: 0.0,
            w: 2.0,
            h: 2.0,
        };
        let b = Rect {
            x: 1.0,
            y: 1.0,
            w: 2.0,
            h: 2.0,
        };
        let c = Rect {
            x: 2.0,
            y: 0.0,
            w: 1.0,
            h: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching edges do not overlap");
        assert_eq!(a.center(), (1.0, 1.0));
    }
}
