//! Slicing floorplanner with NoC switch insertion.
//!
//! The last step of the paper's synthesis flow inserts the NoC components on
//! the chip floorplan and computes wire lengths, wire power and delay (§4).
//! This crate provides that substrate:
//!
//! * [`floorplan`] — a Wong–Liu style simulated-annealing floorplanner over
//!   normalized Polish expressions. The cost function trades off die area,
//!   aspect ratio, traffic-weighted wirelength **and voltage-island
//!   cohesion** (cores of one island must be contiguous so they can share
//!   power rails — the premise of island-level power gating).
//! * [`place_attachments`] — places NoC switches/NIs at the traffic-weighted
//!   centroid of the blocks they connect (switches are small and routed
//!   over-the-cell, so they need no legalized sites).
//! * [`render_ascii`] — a terminal rendering of the floorplan (Figure 5).
//!
//! # Example
//!
//! ```
//! use vi_noc_floorplan::{floorplan, FloorplanConfig, Module, Net};
//!
//! let modules = vec![
//!     Module::new("cpu", 2.0, 0),
//!     Module::new("mem", 1.5, 1),
//!     Module::new("dsp", 1.0, 0),
//! ];
//! let nets = vec![Net::two_pin(0, 1, 5.0), Net::two_pin(2, 1, 2.0)];
//! let cfg = FloorplanConfig { iterations: 500, ..FloorplanConfig::default() };
//! let plan = floorplan(&modules, &nets, &cfg);
//! assert_eq!(plan.rect_count(), 3);
//! assert!(plan.utilization() > 0.3);
//! ```

#![warn(missing_docs)]

mod anneal;
mod placement;
mod render;
mod slicing;
mod wire;

pub use anneal::{floorplan, FloorplanConfig};
pub use placement::{Placement, Rect};
pub use render::render_ascii;
pub use slicing::{Module, Net};
pub use wire::{manhattan, place_attachments, Attachment};
