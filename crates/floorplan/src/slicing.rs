//! Slicing-tree representation: modules, nets and Polish expressions.

/// A rectangular block to place (a core, or a reserved macro).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Instance name (for rendering).
    pub name: String,
    /// Width in mm (modules start square; the annealer may rotate them).
    pub width_mm: f64,
    /// Height in mm.
    pub height_mm: f64,
    /// Voltage island of the module, used by the cohesion cost term.
    pub island: usize,
}

impl Module {
    /// Creates a square module of `area_mm2` belonging to `island`.
    ///
    /// # Panics
    ///
    /// Panics if `area_mm2` is not strictly positive.
    pub fn new(name: impl Into<String>, area_mm2: f64, island: usize) -> Self {
        assert!(area_mm2 > 0.0, "module area must be positive");
        let side = area_mm2.sqrt();
        Module {
            name: name.into(),
            width_mm: side,
            height_mm: side,
            island,
        }
    }

    /// Creates a module with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn with_shape(name: impl Into<String>, w_mm: f64, h_mm: f64, island: usize) -> Self {
        assert!(
            w_mm > 0.0 && h_mm > 0.0,
            "module dimensions must be positive"
        );
        Module {
            name: name.into(),
            width_mm: w_mm,
            height_mm: h_mm,
            island,
        }
    }

    /// Module area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }
}

/// A hyper-net connecting modules, weighted by communication bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Indices of connected modules.
    pub pins: Vec<usize>,
    /// Net weight (e.g. bandwidth in MB/s, normalized by the caller).
    pub weight: f64,
}

impl Net {
    /// Convenience constructor for the common two-pin (flow) net.
    pub fn two_pin(a: usize, b: usize, weight: f64) -> Self {
        Net {
            pins: vec![a, b],
            weight,
        }
    }
}

/// One element of a Polish expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PolishElem {
    /// A leaf module index.
    Operand(usize),
    /// Horizontal cut: second subtree stacked on top of the first.
    H,
    /// Vertical cut: second subtree placed right of the first.
    V,
}

/// A (normalized-enough) Polish expression over `n` modules together with
/// each module's rotation flag.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PolishExpr {
    pub elems: Vec<PolishElem>,
    pub rotated: Vec<bool>,
}

impl PolishExpr {
    /// Initial expression: modules joined by alternating cuts, i.e.
    /// `0 1 V 2 H 3 V ...` — a reasonable seed for annealing.
    pub fn initial(n: usize) -> Self {
        assert!(n > 0, "need at least one module");
        let mut elems = vec![PolishElem::Operand(0)];
        for (i, item) in (1..n).enumerate() {
            elems.push(PolishElem::Operand(item));
            elems.push(if i % 2 == 0 {
                PolishElem::V
            } else {
                PolishElem::H
            });
        }
        PolishExpr {
            elems,
            rotated: vec![false; n],
        }
    }

    /// Checks the balloting property (every prefix has more operands than
    /// operators) and completeness. Used by move validity checks and tests.
    pub fn is_valid(&self, n: usize) -> bool {
        let mut operands = 0usize;
        let mut operators = 0usize;
        for e in &self.elems {
            match e {
                PolishElem::Operand(_) => operands += 1,
                _ => {
                    operators += 1;
                    if operators >= operands {
                        return false;
                    }
                }
            }
        }
        operands == n && operators + 1 == operands
    }

    /// Positions (indices into `elems`) of all operands.
    pub fn operand_positions(&self) -> Vec<usize> {
        self.elems
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, PolishElem::Operand(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Effective (width, height) of module `idx` under its rotation flag.
    pub fn module_shape(&self, modules: &[Module], idx: usize) -> (f64, f64) {
        let m = &modules[idx];
        if self.rotated[idx] {
            (m.height_mm, m.width_mm)
        } else {
            (m.width_mm, m.height_mm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_constructors() {
        let sq = Module::new("a", 4.0, 0);
        assert!((sq.width_mm - 2.0).abs() < 1e-12);
        assert!((sq.area_mm2() - 4.0).abs() < 1e-12);
        let r = Module::with_shape("b", 1.0, 3.0, 2);
        assert_eq!(r.island, 2);
        assert!((r.area_mm2() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn initial_expression_is_valid() {
        for n in 1..20 {
            let e = PolishExpr::initial(n);
            assert!(e.is_valid(n), "n={n}");
            assert_eq!(e.operand_positions().len(), n);
        }
    }

    #[test]
    fn validity_rejects_malformed() {
        let mut e = PolishExpr::initial(3);
        // Swap first operand and last operator: breaks balloting.
        let last = e.elems.len() - 1;
        e.elems.swap(0, last);
        assert!(!e.is_valid(3));
    }

    #[test]
    fn rotation_flips_shape() {
        let modules = vec![Module::with_shape("a", 1.0, 2.0, 0)];
        let mut e = PolishExpr::initial(1);
        assert_eq!(e.module_shape(&modules, 0), (1.0, 2.0));
        e.rotated[0] = true;
        assert_eq!(e.module_shape(&modules, 0), (2.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_area() {
        Module::new("bad", 0.0, 0);
    }
}
