//! Wire-length computation and NoC component placement.

use crate::placement::Placement;

/// A NoC component (switch or NI) to drop onto a finished floorplan,
/// described by what it attaches to.
#[derive(Debug, Clone, PartialEq)]
pub struct Attachment {
    /// `(module index, weight)` pairs: the blocks this component talks to
    /// and how much traffic flows to each (e.g. bandwidth in MB/s).
    pub anchors: Vec<(usize, f64)>,
}

impl Attachment {
    /// Creates an attachment from anchor pairs.
    pub fn new(anchors: Vec<(usize, f64)>) -> Self {
        Attachment { anchors }
    }
}

/// Manhattan distance between two points, in mm.
pub fn manhattan(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Places NoC components at the traffic-weighted centroid of their anchors.
///
/// Switches and NIs are tiny compared to cores and are routed over the cell
/// rows (§3.1: over-the-cell links), so they need no legalized sites — the
/// centroid minimizes the weighted sum of Manhattan wire lengths well enough
/// for the paper's wire-power/delay estimates.
///
/// Components with no anchors land at the die center. Weights that sum to
/// zero degrade to the unweighted centroid.
///
/// # Panics
///
/// Panics if an anchor references a module outside the placement.
pub fn place_attachments(placement: &Placement, items: &[Attachment]) -> Vec<(f64, f64)> {
    let (dw, dh) = placement.die();
    items
        .iter()
        .map(|att| {
            if att.anchors.is_empty() {
                return (dw / 2.0, dh / 2.0);
            }
            let mut total_w = 0.0;
            for &(m, w) in &att.anchors {
                assert!(m < placement.rect_count(), "anchor module {m} missing");
                total_w += w.max(0.0);
            }
            let (mut x, mut y) = (0.0, 0.0);
            if total_w <= 0.0 {
                for &(m, _) in &att.anchors {
                    let (cx, cy) = placement.center(m);
                    x += cx;
                    y += cy;
                }
                (x / att.anchors.len() as f64, y / att.anchors.len() as f64)
            } else {
                for &(m, w) in &att.anchors {
                    let (cx, cy) = placement.center(m);
                    x += cx * w.max(0.0) / total_w;
                    y += cy * w.max(0.0) / total_w;
                }
                (x, y)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{floorplan, FloorplanConfig};
    use crate::slicing::Module;

    fn simple_plan() -> Placement {
        let modules = vec![
            Module::new("a", 1.0, 0),
            Module::new("b", 1.0, 0),
            Module::new("c", 1.0, 0),
            Module::new("d", 1.0, 0),
        ];
        floorplan(
            &modules,
            &[],
            &FloorplanConfig {
                iterations: 1000,
                ..FloorplanConfig::default()
            },
        )
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(manhattan((0.0, 0.0), (3.0, 4.0)), 7.0);
        assert_eq!(manhattan((1.0, 1.0), (1.0, 1.0)), 0.0);
    }

    #[test]
    fn centroid_lands_between_anchors() {
        let plan = simple_plan();
        let att = Attachment::new(vec![(0, 1.0), (1, 1.0)]);
        let pos = place_attachments(&plan, &[att])[0];
        let a = plan.center(0);
        let b = plan.center(1);
        assert!((pos.0 - (a.0 + b.0) / 2.0).abs() < 1e-9);
        assert!((pos.1 - (a.1 + b.1) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_centroid() {
        let plan = simple_plan();
        let att = Attachment::new(vec![(0, 9.0), (1, 1.0)]);
        let pos = place_attachments(&plan, &[att])[0];
        let a = plan.center(0);
        let b = plan.center(1);
        assert!(
            manhattan(pos, a) < manhattan(pos, b),
            "centroid should sit near the heavy anchor"
        );
    }

    #[test]
    fn no_anchors_defaults_to_die_center() {
        let plan = simple_plan();
        let pos = place_attachments(&plan, &[Attachment::new(vec![])])[0];
        let (dw, dh) = plan.die();
        assert_eq!(pos, (dw / 2.0, dh / 2.0));
    }

    #[test]
    fn zero_weights_fall_back_to_unweighted() {
        let plan = simple_plan();
        let att = Attachment::new(vec![(0, 0.0), (1, 0.0)]);
        let pos = place_attachments(&plan, &[att])[0];
        let a = plan.center(0);
        let b = plan.center(1);
        assert!((pos.0 - (a.0 + b.0) / 2.0).abs() < 1e-9);
        assert!((pos.1 - (a.1 + b.1) / 2.0).abs() < 1e-9);
    }
}
