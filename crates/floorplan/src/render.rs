//! ASCII rendering of floorplans (the reproduction of Figure 5).

use crate::placement::Placement;

/// Renders a floorplan as an ASCII grid of `cols × rows` characters.
///
/// Each module is filled with a label character (`A`, `B`, … then `a` …,
/// cycling); `markers` adds point markers (e.g. switch sites) drawn as `*`
/// on top. The output includes a frame and a legend mapping labels to the
/// provided `names`.
///
/// # Panics
///
/// Panics if `names.len() != placement.rect_count()` or the grid is
/// degenerate (`cols`/`rows` < 2).
pub fn render_ascii(
    placement: &Placement,
    names: &[&str],
    markers: &[(f64, f64)],
    cols: usize,
    rows: usize,
) -> String {
    assert_eq!(
        names.len(),
        placement.rect_count(),
        "one name per placed module"
    );
    assert!(cols >= 2 && rows >= 2, "grid too small");
    let (dw, dh) = placement.die();
    let sx = cols as f64 / dw.max(1e-9);
    let sy = rows as f64 / dh.max(1e-9);

    let label = |i: usize| -> char {
        let alphabet: Vec<char> = ('A'..='Z').chain('a'..='z').chain('0'..='9').collect();
        alphabet[i % alphabet.len()]
    };

    let mut grid = vec![vec![' '; cols]; rows];
    for (i, r) in placement.rects().iter().enumerate() {
        let x0 = (r.x * sx).floor() as usize;
        let x1 = (((r.x + r.w) * sx).ceil() as usize).min(cols);
        let y0 = (r.y * sy).floor() as usize;
        let y1 = (((r.y + r.h) * sy).ceil() as usize).min(rows);
        for row in grid.iter_mut().take(y1).skip(y0) {
            for cell in row.iter_mut().take(x1).skip(x0) {
                *cell = label(i);
            }
        }
    }
    for &(mx, my) in markers {
        let c = ((mx * sx) as usize).min(cols - 1);
        let r = ((my * sy) as usize).min(rows - 1);
        grid[r][c] = '*';
    }

    // Render with y growing upward (row 0 at the bottom).
    let mut out = String::new();
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", label(i), name));
    }
    if !markers.is_empty() {
        out.push_str("  * = NoC switch\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{floorplan, FloorplanConfig};
    use crate::slicing::Module;

    #[test]
    fn renders_all_modules_and_legend() {
        let modules = vec![
            Module::new("cpu", 2.0, 0),
            Module::new("mem", 1.0, 1),
            Module::new("dsp", 1.0, 0),
        ];
        let plan = floorplan(
            &modules,
            &[],
            &FloorplanConfig {
                iterations: 500,
                ..FloorplanConfig::default()
            },
        );
        let s = render_ascii(&plan, &["cpu", "mem", "dsp"], &[(0.1, 0.1)], 40, 16);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains('C'));
        assert!(s.contains('*'));
        assert!(s.contains("A = cpu"));
        assert!(s.lines().count() >= 16);
    }

    #[test]
    #[should_panic(expected = "one name per placed module")]
    fn validates_name_count() {
        let modules = vec![Module::new("a", 1.0, 0)];
        let plan = floorplan(
            &modules,
            &[],
            &FloorplanConfig {
                iterations: 100,
                ..FloorplanConfig::default()
            },
        );
        render_ascii(&plan, &[], &[], 10, 10);
    }
}
