//! Simulated-annealing floorplan optimization (Wong–Liu moves), with
//! independently seeded restarts fanned out across threads.

use crate::placement::{evaluate, Placement};
use crate::slicing::{Module, Net, PolishElem, PolishExpr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Parameters for [`floorplan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanConfig {
    /// RNG seed; equal seeds give identical floorplans.
    pub seed: u64,
    /// Number of proposed moves per restart.
    pub iterations: usize,
    /// Initial acceptance temperature (relative to typical cost deltas).
    pub initial_temp: f64,
    /// Geometric cooling factor applied every `iterations / 50` moves.
    pub cooling: f64,
    /// Weight of traffic-weighted wirelength in the cost.
    pub lambda_wire: f64,
    /// Weight of voltage-island cohesion (islands should be contiguous so
    /// each can have its own power rails).
    pub lambda_island: f64,
    /// Weight of the aspect-ratio penalty (`|ln(W/H)|`).
    pub lambda_aspect: f64,
    /// Number of independent annealing chains; the best result wins.
    /// Restart `r` is seeded with `seed + r`, so restart 0 reproduces the
    /// single-chain result and adding restarts can only improve the cost.
    pub restarts: usize,
    /// Run the restarts across threads (the same order-preserving rayon
    /// fan-out the synthesis sweep uses). Parallel and sequential execution
    /// select the identical placement.
    pub parallel: bool,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        FloorplanConfig {
            seed: 0xF100,
            iterations: 20_000,
            initial_temp: 2.0,
            cooling: 0.92,
            lambda_wire: 0.02,
            lambda_island: 0.3,
            lambda_aspect: 2.0,
            restarts: 2,
            parallel: true,
        }
    }
}

/// Cost of a placement: die area + weighted wirelength + island spread +
/// aspect penalty. Lower is better.
fn cost(placement: &Placement, modules: &[Module], nets: &[Net], cfg: &FloorplanConfig) -> f64 {
    let (w, h) = placement.die();
    let area = w * h;
    let aspect = if w > 0.0 && h > 0.0 {
        (w / h).ln().abs()
    } else {
        10.0
    };

    // Traffic-weighted half-perimeter wirelength.
    let mut wl = 0.0;
    let total_weight: f64 = nets.iter().map(|n| n.weight).sum::<f64>().max(1e-12);
    for net in nets {
        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in &net.pins {
            let (cx, cy) = placement.center(p);
            lo_x = lo_x.min(cx);
            hi_x = hi_x.max(cx);
            lo_y = lo_y.min(cy);
            hi_y = hi_y.max(cy);
        }
        wl += net.weight / total_weight * ((hi_x - lo_x) + (hi_y - lo_y));
    }

    // Island cohesion: half-perimeter of each island's bounding box, summed.
    let n_islands = modules.iter().map(|m| m.island).max().unwrap_or(0) + 1;
    let mut spread = 0.0;
    for isl in 0..n_islands {
        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for (i, m) in modules.iter().enumerate() {
            if m.island == isl {
                any = true;
                let (cx, cy) = placement.center(i);
                lo_x = lo_x.min(cx);
                hi_x = hi_x.max(cx);
                lo_y = lo_y.min(cy);
                hi_y = hi_y.max(cy);
            }
        }
        if any {
            spread += (hi_x - lo_x) + (hi_y - lo_y);
        }
    }

    area + cfg.lambda_aspect * area * aspect.min(2.0) / 2.0
        + cfg.lambda_wire * area * wl
        + cfg.lambda_island * spread
}

/// Proposes one random Wong–Liu move; returns `false` if the proposal was
/// structurally invalid (caller retries).
fn propose(expr: &mut PolishExpr, n: usize, rng: &mut StdRng) -> bool {
    match rng.random_range(0..4u8) {
        // M1: swap two adjacent operands.
        0 => {
            let ops = expr.operand_positions();
            if ops.len() < 2 {
                return false;
            }
            let k = rng.random_range(0..ops.len() - 1);
            expr.elems.swap(ops[k], ops[k + 1]);
            true
        }
        // M2: complement a chain of operators (flip H<->V).
        1 => {
            let chains: Vec<usize> = expr
                .elems
                .iter()
                .enumerate()
                .filter(|(_, e)| !matches!(e, PolishElem::Operand(_)))
                .map(|(i, _)| i)
                .collect();
            if chains.is_empty() {
                return false;
            }
            let start = chains[rng.random_range(0..chains.len())];
            let mut i = start;
            while i < expr.elems.len() {
                match expr.elems[i] {
                    PolishElem::H => expr.elems[i] = PolishElem::V,
                    PolishElem::V => expr.elems[i] = PolishElem::H,
                    PolishElem::Operand(_) => break,
                }
                i += 1;
            }
            true
        }
        // M3: swap an adjacent operand/operator pair, if validity holds.
        2 => {
            if expr.elems.len() < 2 {
                return false;
            }
            let k = rng.random_range(0..expr.elems.len() - 1);
            let pair = (expr.elems[k], expr.elems[k + 1]);
            let swappable = matches!(
                pair,
                (PolishElem::Operand(_), PolishElem::H | PolishElem::V)
                    | (PolishElem::H | PolishElem::V, PolishElem::Operand(_))
            );
            if !swappable {
                return false;
            }
            expr.elems.swap(k, k + 1);
            if expr.is_valid(n) {
                true
            } else {
                expr.elems.swap(k, k + 1);
                false
            }
        }
        // M4: rotate a random module.
        _ => {
            let i = rng.random_range(0..n);
            expr.rotated[i] = !expr.rotated[i];
            true
        }
    }
}

/// One annealing chain from `seed`; returns the best cost seen and the
/// expression achieving it.
fn anneal_chain(
    modules: &[Module],
    nets: &[Net],
    cfg: &FloorplanConfig,
    seed: u64,
) -> (f64, PolishExpr) {
    let n = modules.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut expr = PolishExpr::initial(n);
    let mut current_cost = cost(&evaluate(&expr, modules), modules, nets, cfg);
    let mut best_expr = expr.clone();
    let mut best_cost = current_cost;

    let mut temp = cfg.initial_temp * current_cost.max(1e-9);
    let chunk = (cfg.iterations / 50).max(1);

    for it in 0..cfg.iterations {
        let mut candidate = expr.clone();
        if !propose(&mut candidate, n, &mut rng) {
            continue;
        }
        debug_assert!(candidate.is_valid(n));
        let c = cost(&evaluate(&candidate, modules), modules, nets, cfg);
        let delta = c - current_cost;
        let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / temp.max(1e-12)).exp();
        if accept {
            expr = candidate;
            current_cost = c;
            if c < best_cost {
                best_cost = c;
                best_expr = expr.clone();
            }
        }
        if (it + 1) % chunk == 0 {
            temp *= cfg.cooling;
        }
    }

    (best_cost, best_expr)
}

/// Floorplans `modules` by simulated annealing, minimizing die area,
/// traffic-weighted wirelength, island spread and aspect-ratio penalty.
///
/// Runs [`FloorplanConfig::restarts`] independent chains (seeded
/// `seed + r`, fanned out across threads when
/// [`FloorplanConfig::parallel`] is set) and returns the best placement
/// encountered; cost ties go to the lowest restart index, so the result is
/// deterministic for a fixed [`FloorplanConfig`] in both execution modes.
///
/// # Panics
///
/// Panics if `modules` is empty or a net references a missing module.
pub fn floorplan(modules: &[Module], nets: &[Net], cfg: &FloorplanConfig) -> Placement {
    assert!(!modules.is_empty(), "cannot floorplan zero modules");
    for net in nets {
        for &p in &net.pins {
            assert!(p < modules.len(), "net references missing module {p}");
        }
    }
    let restarts: Vec<u64> = (0..cfg.restarts.max(1) as u64).collect();
    let chains: Vec<(f64, PolishExpr)> = if cfg.parallel && restarts.len() > 1 {
        restarts
            .par_iter()
            .map(|&r| anneal_chain(modules, nets, cfg, cfg.seed.wrapping_add(r)))
            .collect()
    } else {
        restarts
            .iter()
            .map(|&r| anneal_chain(modules, nets, cfg, cfg.seed.wrapping_add(r)))
            .collect()
    };
    let best = chains
        .into_iter()
        .reduce(|best, next| if next.0 < best.0 { next } else { best })
        .expect("at least one restart");
    evaluate(&best.1, modules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FloorplanConfig {
        FloorplanConfig {
            iterations: 3_000,
            ..FloorplanConfig::default()
        }
    }

    fn modules_two_islands() -> Vec<Module> {
        (0..8)
            .map(|i| Module::new(format!("m{i}"), 1.0 + (i % 3) as f64 * 0.5, i / 4))
            .collect()
    }

    #[test]
    fn result_is_overlap_free_and_reasonably_packed() {
        let modules = modules_two_islands();
        let plan = floorplan(&modules, &[], &quick_cfg());
        assert!(plan.is_overlap_free());
        assert!(
            plan.utilization() > 0.5,
            "utilization {} too low",
            plan.utilization()
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let modules = modules_two_islands();
        let a = floorplan(&modules, &[], &quick_cfg());
        let b = floorplan(&modules, &[], &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn annealing_beats_initial_expression() {
        // Mixed-size modules: the initial strip layout is bad.
        let modules: Vec<Module> = (0..12)
            .map(|i| Module::new(format!("m{i}"), 0.5 + (i as f64) * 0.3, 0))
            .collect();
        let initial = evaluate(&PolishExpr::initial(12), &modules);
        let annealed = floorplan(&modules, &[], &quick_cfg());
        assert!(
            annealed.die_area_mm2() < initial.die_area_mm2(),
            "SA {} should beat initial {}",
            annealed.die_area_mm2(),
            initial.die_area_mm2()
        );
    }

    #[test]
    fn heavy_net_pulls_modules_together() {
        // Modules 0 and 7 heavily connected: after annealing they should be
        // closer than the die diagonal would suggest at random.
        let modules: Vec<Module> = (0..8)
            .map(|i| Module::new(format!("m{i}"), 1.0, 0))
            .collect();
        let nets = vec![Net::two_pin(0, 7, 100.0)];
        let cfg = FloorplanConfig {
            iterations: 12_000,
            lambda_wire: 1.0,
            ..FloorplanConfig::default()
        };
        let plan = floorplan(&modules, &nets, &cfg);
        let (ax, ay) = plan.center(0);
        let (bx, by) = plan.center(7);
        let dist = (ax - bx).abs() + (ay - by).abs();
        let (dw, dh) = plan.die();
        assert!(
            dist < (dw + dh) * 0.55,
            "hot pair distance {dist} vs die {dw}x{dh}"
        );
    }

    #[test]
    fn island_cohesion_groups_islands() {
        // Two islands of 4; cohesion weight high. Island bounding boxes
        // should not both span the whole die.
        let modules = modules_two_islands();
        let cfg = FloorplanConfig {
            iterations: 15_000,
            lambda_island: 3.0,
            ..FloorplanConfig::default()
        };
        let plan = floorplan(&modules, &[], &cfg);
        let bbox = |isl: usize| {
            let mut lo = (f64::INFINITY, f64::INFINITY);
            let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for (i, m) in modules.iter().enumerate() {
                if m.island == isl {
                    let (x, y) = plan.center(i);
                    lo = (lo.0.min(x), lo.1.min(y));
                    hi = (hi.0.max(x), hi.1.max(y));
                }
            }
            (hi.0 - lo.0) + (hi.1 - lo.1)
        };
        let (dw, dh) = plan.die();
        let die_hp = dw + dh;
        assert!(
            bbox(0) + bbox(1) < 1.6 * die_hp,
            "island spread {} + {} vs die half-perimeter {}",
            bbox(0),
            bbox(1),
            die_hp
        );
    }

    #[test]
    fn restart_modes_select_the_same_placement() {
        let modules = modules_two_islands();
        let nets = vec![Net::two_pin(0, 7, 10.0)];
        let base = FloorplanConfig {
            restarts: 4,
            ..quick_cfg()
        };
        let seq = floorplan(
            &modules,
            &nets,
            &FloorplanConfig {
                parallel: false,
                ..base.clone()
            },
        );
        let par = floorplan(
            &modules,
            &nets,
            &FloorplanConfig {
                parallel: true,
                ..base
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn extra_restarts_never_worsen_the_cost() {
        let modules = modules_two_islands();
        let nets = vec![Net::two_pin(1, 6, 25.0)];
        let single = FloorplanConfig {
            restarts: 1,
            ..quick_cfg()
        };
        let multi = FloorplanConfig {
            restarts: 4,
            ..quick_cfg()
        };
        let p1 = floorplan(&modules, &nets, &single);
        let p4 = floorplan(&modules, &nets, &multi);
        // Restart 0 of the multi run *is* the single run, so best-of-4 can
        // only match or beat it.
        assert!(
            cost(&p4, &modules, &nets, &multi) <= cost(&p1, &modules, &nets, &single) + 1e-12,
            "best-of-4 cost {} worse than single-chain {}",
            cost(&p4, &modules, &nets, &multi),
            cost(&p1, &modules, &nets, &single)
        );
    }

    #[test]
    fn zero_restarts_clamps_to_one_chain() {
        let modules = modules_two_islands();
        let zero = FloorplanConfig {
            restarts: 0,
            ..quick_cfg()
        };
        let one = FloorplanConfig {
            restarts: 1,
            ..quick_cfg()
        };
        assert_eq!(
            floorplan(&modules, &[], &zero),
            floorplan(&modules, &[], &one)
        );
    }

    #[test]
    fn single_module_floorplan() {
        let modules = vec![Module::new("only", 2.25, 0)];
        let plan = floorplan(&modules, &[], &quick_cfg());
        assert_eq!(plan.rect_count(), 1);
        assert!((plan.die_area_mm2() - 2.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "missing module")]
    fn net_validation() {
        floorplan(
            &[Module::new("a", 1.0, 0)],
            &[Net::two_pin(0, 3, 1.0)],
            &quick_cfg(),
        );
    }
}
