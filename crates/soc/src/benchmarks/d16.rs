//! D16 — set-top box / digital TV SoC (16 cores).

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;

/// Builds a 16-core set-top-box SoC: host CPU with split caches, a
/// transport-stream demux accelerator, dual video decoders + encoder for
/// transcode, audio and display, three memories (SDRAM/SRAM always-on),
/// DMA, a smart-card security block and two network/storage ports.
///
/// Natural logical island count: 5 (memories | cpu-side | accelerator |
/// media | I/O).
pub fn d16_settop() -> SocSpec {
    let mut s = SocSpec::new("d16_settop");

    let cpu = s.add_core(CoreSpec::new("cpu", CoreKind::Cpu, 2.0, 80.0, 450.0));
    let icache = s.add_core(CoreSpec::new("icache", CoreKind::Cache, 0.8, 15.0, 450.0));
    let dcache = s.add_core(CoreSpec::new("dcache", CoreKind::Cache, 0.8, 14.0, 450.0));
    let dma = s.add_core(CoreSpec::new("dma", CoreKind::Dma, 0.5, 10.0, 300.0));
    let smartcard = s.add_core(CoreSpec::new(
        "smartcard",
        CoreKind::Security,
        0.6,
        8.0,
        150.0,
    ));
    let demux = s.add_core(CoreSpec::new(
        "demux",
        CoreKind::Accelerator,
        1.0,
        22.0,
        250.0,
    ));
    let viddec0 = s.add_core(CoreSpec::new(
        "viddec0",
        CoreKind::VideoDecoder,
        2.5,
        70.0,
        250.0,
    ));
    let viddec1 = s.add_core(CoreSpec::new(
        "viddec1",
        CoreKind::VideoDecoder,
        2.5,
        65.0,
        250.0,
    ));
    let videnc = s.add_core(CoreSpec::new(
        "videnc",
        CoreKind::VideoEncoder,
        2.2,
        55.0,
        250.0,
    ));
    let audio = s.add_core(CoreSpec::new("audio", CoreKind::Audio, 0.8, 12.0, 100.0));
    let display = s.add_core(CoreSpec::new(
        "display",
        CoreKind::Display,
        1.1,
        26.0,
        150.0,
    ));
    let sdram = s.add_core(CoreSpec::new("sdram", CoreKind::Memory, 2.6, 34.0, 266.0).always_on());
    let sram = s.add_core(CoreSpec::new("sram", CoreKind::Memory, 1.6, 18.0, 300.0).always_on());
    let flash = s.add_core(CoreSpec::new("flash", CoreKind::Memory, 1.0, 8.0, 133.0));
    let eth = s.add_core(CoreSpec::new("eth", CoreKind::Peripheral, 0.6, 10.0, 125.0));
    let sata = s.add_core(CoreSpec::new(
        "sata",
        CoreKind::Peripheral,
        0.7,
        11.0,
        150.0,
    ));

    // Host CPU.
    s.add_flow(TrafficFlow::new(cpu, icache, 650.0, 12));
    s.add_flow(TrafficFlow::new(icache, cpu, 1000.0, 12));
    s.add_flow(TrafficFlow::new(cpu, dcache, 500.0, 12));
    s.add_flow(TrafficFlow::new(dcache, cpu, 750.0, 12));
    s.add_flow(TrafficFlow::new(icache, sdram, 210.0, 16));
    s.add_flow(TrafficFlow::new(sdram, icache, 280.0, 16));
    s.add_flow(TrafficFlow::new(dcache, sdram, 180.0, 16));
    s.add_flow(TrafficFlow::new(sdram, dcache, 230.0, 16));

    // Streams: network/disk -> demux -> decoders -> display.
    s.add_flow(TrafficFlow::new(eth, demux, 60.0, 24));
    s.add_flow(TrafficFlow::new(sata, demux, 90.0, 24));
    s.add_flow(TrafficFlow::new(demux, sdram, 140.0, 18));
    s.add_flow(TrafficFlow::new(sdram, viddec0, 340.0, 18));
    s.add_flow(TrafficFlow::new(viddec0, sdram, 270.0, 18));
    s.add_flow(TrafficFlow::new(sdram, viddec1, 300.0, 18));
    s.add_flow(TrafficFlow::new(viddec1, sdram, 240.0, 18));
    s.add_flow(TrafficFlow::new(viddec0, display, 180.0, 20));
    s.add_flow(TrafficFlow::new(viddec1, display, 160.0, 20));
    s.add_flow(TrafficFlow::new(sdram, display, 220.0, 18));

    // Transcode back to disk.
    s.add_flow(TrafficFlow::new(sdram, videnc, 200.0, 20));
    s.add_flow(TrafficFlow::new(videnc, sdram, 130.0, 20));
    s.add_flow(TrafficFlow::new(sdram, sata, 80.0, 26));

    // Audio from SRAM buffers.
    s.add_flow(TrafficFlow::new(sram, audio, 16.0, 30));
    s.add_flow(TrafficFlow::new(audio, sram, 10.0, 30));
    s.add_flow(TrafficFlow::new(sdram, sram, 120.0, 20));
    s.add_flow(TrafficFlow::new(sram, sdram, 90.0, 20));

    // Conditional access, DMA housekeeping, firmware.
    s.add_flow(TrafficFlow::new(demux, smartcard, 20.0, 26));
    s.add_flow(TrafficFlow::new(smartcard, demux, 15.0, 26));
    s.add_flow(TrafficFlow::new(dma, sdram, 150.0, 20));
    s.add_flow(TrafficFlow::new(sdram, dma, 150.0, 20));
    s.add_flow(TrafficFlow::new(flash, dma, 70.0, 28));
    s.add_flow(TrafficFlow::new(dma, flash, 30.0, 28));

    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::logical_partition;

    #[test]
    fn validates_with_16_cores() {
        let soc = d16_settop();
        assert_eq!(soc.core_count(), 16);
        soc.validate().unwrap();
    }

    #[test]
    fn supports_five_logical_islands() {
        let vi = logical_partition(&d16_settop(), 5).unwrap();
        assert_eq!(vi.island_count(), 5);
    }
}
