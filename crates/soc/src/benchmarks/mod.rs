//! Bundled SoC benchmarks.
//!
//! [`d26_mobile`] reconstructs the paper's case-study SoC: *"The benchmark
//! has 26 cores, consisting of several processors, DSPs, caches, DMA
//! controller, integrated memory, video decoder engines and a multitude of
//! peripheral I/O ports"* (§5). The remaining benchmarks stand in for the
//! paper's "variety of SoC benchmarks" used for the suite-wide overhead
//! numbers (3 % power, < 0.5 % area): realistic core mixes and traffic
//! patterns for four other embedded product classes.
//!
//! All bandwidths are sustained MB/s; latency constraints are zero-load NoC
//! cycles. Every spec validates (`SocSpec::validate`) and supports logical
//! partitioning at its natural island count.

mod d12;
mod d16;
mod d20;
mod d26;
mod d36;

pub use d12::d12_auto;
pub use d16::d16_settop;
pub use d20::d20_baseband;
pub use d26::d26_mobile;
pub use d36::d36_tablet;

use crate::spec::SocSpec;

/// The full benchmark suite with each design's natural logical island count,
/// as used by the suite-wide overhead experiment (T1).
pub fn suite() -> Vec<(SocSpec, usize)> {
    vec![
        (d12_auto(), 4),
        (d16_settop(), 5),
        (d20_baseband(), 5),
        (d26_mobile(), 6),
        (d36_tablet(), 7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::logical_partition;

    #[test]
    fn all_benchmarks_validate() {
        for (soc, _) in suite() {
            soc.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        }
    }

    #[test]
    fn suite_core_counts_match_names() {
        let counts: Vec<(String, usize)> = suite()
            .into_iter()
            .map(|(s, _)| (s.name().to_string(), s.core_count()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("d12_auto".to_string(), 12),
                ("d16_settop".to_string(), 16),
                ("d20_baseband".to_string(), 20),
                ("d26_mobile".to_string(), 26),
                ("d36_tablet".to_string(), 36),
            ]
        );
    }

    #[test]
    fn natural_island_counts_are_realizable() {
        for (soc, k) in suite() {
            let vi =
                logical_partition(&soc, k).unwrap_or_else(|e| panic!("{} k={k}: {e}", soc.name()));
            assert_eq!(vi.island_count(), k);
        }
    }

    #[test]
    fn every_benchmark_has_an_always_on_memory() {
        for (soc, _) in suite() {
            assert!(
                soc.cores().iter().any(|c| c.always_on),
                "{} lacks an always-on core",
                soc.name()
            );
        }
    }

    #[test]
    fn every_core_participates_in_traffic() {
        for (soc, _) in suite() {
            for id in soc.core_ids() {
                let (i, o) = soc.core_io_bandwidth(id);
                assert!(
                    i.bytes_per_s() + o.bytes_per_s() > 0.0,
                    "{}: core {} has no traffic",
                    soc.name(),
                    soc.core(id).name
                );
            }
        }
    }
}
