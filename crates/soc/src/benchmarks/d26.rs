//! D26 — the paper's 26-core mobile communication & multimedia SoC.

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;

/// Builds the 26-core mobile/multimedia SoC of the paper's case study.
///
/// Two application processors with split I/D caches, three DSPs, a DMA
/// engine, three memories (shared SDRAM and SRAM are always-on), a video
/// decode/encode + imaging + display pipeline, audio, a cellular modem, a
/// security engine and six peripheral ports.
///
/// Traffic structure: hot CPU↔cache fill/writeback flows, cache↔SDRAM miss
/// traffic, DSP↔SRAM signal buffers, a media DMA pipeline through SDRAM, and
/// light control traffic to the peripherals — the mix that makes
/// communication-based islanding profitable (Figure 2).
pub fn d26_mobile() -> SocSpec {
    let mut s = SocSpec::new("d26_mobile");

    // Compute cluster.
    let arm0 = s.add_core(CoreSpec::new("arm0", CoreKind::Cpu, 2.2, 95.0, 500.0));
    let arm1 = s.add_core(CoreSpec::new("arm1", CoreKind::Cpu, 2.2, 85.0, 500.0));
    let dsp0 = s.add_core(CoreSpec::new("dsp0", CoreKind::Dsp, 1.6, 55.0, 350.0));
    let dsp1 = s.add_core(CoreSpec::new("dsp1", CoreKind::Dsp, 1.6, 50.0, 350.0));
    let dsp2 = s.add_core(CoreSpec::new("dsp2", CoreKind::Dsp, 1.6, 45.0, 300.0));
    let icache0 = s.add_core(CoreSpec::new("icache0", CoreKind::Cache, 0.9, 18.0, 500.0));
    let dcache0 = s.add_core(CoreSpec::new("dcache0", CoreKind::Cache, 0.9, 16.0, 500.0));
    let icache1 = s.add_core(CoreSpec::new("icache1", CoreKind::Cache, 0.9, 15.0, 500.0));
    let dcache1 = s.add_core(CoreSpec::new("dcache1", CoreKind::Cache, 0.9, 14.0, 500.0));
    let dma = s.add_core(CoreSpec::new("dma", CoreKind::Dma, 0.5, 12.0, 300.0));

    // Memories. The shared SDRAM controller and on-chip SRAM must stay
    // powered whenever anything else runs.
    let sdram = s.add_core(CoreSpec::new("sdram", CoreKind::Memory, 2.8, 38.0, 266.0).always_on());
    let sram = s.add_core(CoreSpec::new("sram", CoreKind::Memory, 2.0, 22.0, 333.0).always_on());
    let flash = s.add_core(CoreSpec::new("flash", CoreKind::Memory, 1.2, 10.0, 133.0));

    // Media pipeline.
    let viddec = s.add_core(CoreSpec::new(
        "viddec",
        CoreKind::VideoDecoder,
        2.6,
        75.0,
        250.0,
    ));
    let videnc = s.add_core(CoreSpec::new(
        "videnc",
        CoreKind::VideoEncoder,
        2.4,
        65.0,
        250.0,
    ));
    let imaging = s.add_core(CoreSpec::new(
        "imaging",
        CoreKind::Imaging,
        1.8,
        48.0,
        200.0,
    ));
    let display = s.add_core(CoreSpec::new(
        "display",
        CoreKind::Display,
        1.1,
        28.0,
        150.0,
    ));
    let audio = s.add_core(CoreSpec::new("audio", CoreKind::Audio, 0.8, 12.0, 100.0));

    // Connectivity & system.
    let modem = s.add_core(CoreSpec::new("modem", CoreKind::Modem, 3.0, 70.0, 300.0));
    let security = s.add_core(CoreSpec::new(
        "security",
        CoreKind::Security,
        0.7,
        14.0,
        200.0,
    ));

    // Peripheral ports.
    let usb = s.add_core(CoreSpec::new("usb", CoreKind::Peripheral, 0.6, 9.0, 60.0));
    let uart = s.add_core(CoreSpec::new("uart", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let spi = s.add_core(CoreSpec::new("spi", CoreKind::Peripheral, 0.2, 3.0, 50.0));
    let i2c = s.add_core(CoreSpec::new("i2c", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let sdio = s.add_core(CoreSpec::new("sdio", CoreKind::Peripheral, 0.5, 8.0, 100.0));
    let gpio = s.add_core(CoreSpec::new("gpio", CoreKind::Peripheral, 0.2, 2.0, 50.0));

    // CPU <-> cache: the hottest flows of the design.
    s.add_flow(TrafficFlow::new(arm0, icache0, 800.0, 12));
    s.add_flow(TrafficFlow::new(icache0, arm0, 1200.0, 12));
    s.add_flow(TrafficFlow::new(arm0, dcache0, 600.0, 12));
    s.add_flow(TrafficFlow::new(dcache0, arm0, 900.0, 12));
    s.add_flow(TrafficFlow::new(arm1, icache1, 700.0, 12));
    s.add_flow(TrafficFlow::new(icache1, arm1, 1000.0, 12));
    s.add_flow(TrafficFlow::new(arm1, dcache1, 500.0, 12));
    s.add_flow(TrafficFlow::new(dcache1, arm1, 800.0, 12));

    // Cache <-> SDRAM miss/refill traffic.
    s.add_flow(TrafficFlow::new(icache0, sdram, 240.0, 16));
    s.add_flow(TrafficFlow::new(sdram, icache0, 320.0, 16));
    s.add_flow(TrafficFlow::new(dcache0, sdram, 200.0, 16));
    s.add_flow(TrafficFlow::new(sdram, dcache0, 260.0, 16));
    s.add_flow(TrafficFlow::new(icache1, sdram, 200.0, 16));
    s.add_flow(TrafficFlow::new(sdram, icache1, 270.0, 16));
    s.add_flow(TrafficFlow::new(dcache1, sdram, 170.0, 16));
    s.add_flow(TrafficFlow::new(sdram, dcache1, 220.0, 16));

    // DSP cluster works out of the on-chip SRAM, with a neighbour pipeline.
    s.add_flow(TrafficFlow::new(dsp0, sram, 380.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp0, 460.0, 14));
    s.add_flow(TrafficFlow::new(dsp1, sram, 300.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp1, 380.0, 14));
    s.add_flow(TrafficFlow::new(dsp2, sram, 240.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp2, 300.0, 14));
    s.add_flow(TrafficFlow::new(dsp0, dsp1, 150.0, 14));
    s.add_flow(TrafficFlow::new(dsp1, dsp2, 110.0, 14));

    // DMA moves bulk data between memories and I/O.
    s.add_flow(TrafficFlow::new(dma, sdram, 210.0, 18));
    s.add_flow(TrafficFlow::new(sdram, dma, 210.0, 18));
    s.add_flow(TrafficFlow::new(dma, sram, 80.0, 20));
    s.add_flow(TrafficFlow::new(sram, dma, 60.0, 20));
    s.add_flow(TrafficFlow::new(dma, flash, 90.0, 24));
    s.add_flow(TrafficFlow::new(flash, dma, 120.0, 24));

    // Video decode: compressed stream + reference frames live in SDRAM.
    s.add_flow(TrafficFlow::new(sdram, viddec, 350.0, 18));
    s.add_flow(TrafficFlow::new(viddec, sdram, 280.0, 18));
    s.add_flow(TrafficFlow::new(viddec, display, 190.0, 20));
    s.add_flow(TrafficFlow::new(sdram, display, 280.0, 18));

    // Camera capture -> imaging -> encoder -> SDRAM.
    s.add_flow(TrafficFlow::new(imaging, videnc, 210.0, 20));
    s.add_flow(TrafficFlow::new(imaging, sdram, 230.0, 20));
    s.add_flow(TrafficFlow::new(videnc, sdram, 160.0, 20));
    s.add_flow(TrafficFlow::new(sdram, videnc, 120.0, 20));

    // Audio runs from SRAM buffers.
    s.add_flow(TrafficFlow::new(sram, audio, 18.0, 30));
    s.add_flow(TrafficFlow::new(audio, sram, 12.0, 30));

    // Modem exchanges packet data with SDRAM; security filters it.
    s.add_flow(TrafficFlow::new(modem, sdram, 130.0, 20));
    s.add_flow(TrafficFlow::new(sdram, modem, 110.0, 20));
    s.add_flow(TrafficFlow::new(modem, security, 70.0, 22));
    s.add_flow(TrafficFlow::new(security, sdram, 60.0, 22));
    s.add_flow(TrafficFlow::new(sdram, security, 50.0, 22));

    // Peripheral ports: light, latency-tolerant flows via DMA/SDRAM.
    s.add_flow(TrafficFlow::new(usb, sdram, 60.0, 30));
    s.add_flow(TrafficFlow::new(sdram, usb, 80.0, 30));
    s.add_flow(TrafficFlow::new(uart, dma, 2.0, 40));
    s.add_flow(TrafficFlow::new(dma, uart, 3.0, 40));
    s.add_flow(TrafficFlow::new(spi, dma, 10.0, 40));
    s.add_flow(TrafficFlow::new(dma, spi, 12.0, 40));
    s.add_flow(TrafficFlow::new(i2c, dma, 3.0, 40));
    s.add_flow(TrafficFlow::new(dma, i2c, 4.0, 40));
    s.add_flow(TrafficFlow::new(sdio, sdram, 50.0, 30));
    s.add_flow(TrafficFlow::new(sdram, sdio, 60.0, 30));
    s.add_flow(TrafficFlow::new(gpio, dma, 1.0, 40));
    s.add_flow(TrafficFlow::new(dma, gpio, 2.0, 40));

    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_26_cores_and_validates() {
        let soc = d26_mobile();
        assert_eq!(soc.core_count(), 26);
        soc.validate().unwrap();
    }

    #[test]
    fn matches_paper_description() {
        // "several processors, DSPs, caches, DMA controller, integrated
        //  memory, video decoder engines and a multitude of peripheral I/O".
        use crate::core::CoreKind::*;
        let soc = d26_mobile();
        assert!(soc.cores_of_kind(Cpu).len() >= 2);
        assert!(soc.cores_of_kind(Dsp).len() >= 3);
        assert!(soc.cores_of_kind(Cache).len() >= 4);
        assert_eq!(soc.cores_of_kind(Dma).len(), 1);
        assert!(soc.cores_of_kind(Memory).len() >= 3);
        assert!(!soc.cores_of_kind(VideoDecoder).is_empty());
        assert!(soc.cores_of_kind(Peripheral).len() >= 6);
    }

    #[test]
    fn hottest_flow_is_cache_fill() {
        let soc = d26_mobile();
        assert_eq!(soc.max_bandwidth().mbps(), 1200.0);
        assert_eq!(soc.min_latency_cycles(), 12);
    }

    #[test]
    fn system_power_and_area_in_mobile_range() {
        let soc = d26_mobile();
        let p = soc.total_core_dyn_power().mw();
        let a = soc.total_core_area().mm2();
        assert!(p > 500.0 && p < 1500.0, "system power {p} mW");
        assert!(a > 25.0 && a < 60.0, "system area {a} mm^2");
    }

    #[test]
    fn traffic_is_connected() {
        // Every core reaches every other through the traffic graph —
        // required for a single-island reference NoC to make sense.
        let soc = d26_mobile();
        let g = soc.traffic_graph();
        let mut seen = vec![false; g.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "traffic graph disconnected");
    }
}
