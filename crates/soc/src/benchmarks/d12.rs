//! D12 — automotive infotainment head-unit SoC (12 cores).

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;

/// Builds a 12-core automotive infotainment SoC: dual CPU with split
/// caches, one audio DSP, shared SRAM (always-on) + flash, display and
/// audio outputs, and three vehicle-bus peripheral ports.
///
/// Natural logical island count: 4 (memories | compute | media | I/O).
pub fn d12_auto() -> SocSpec {
    let mut s = SocSpec::new("d12_auto");

    let cpu0 = s.add_core(CoreSpec::new("cpu0", CoreKind::Cpu, 1.8, 70.0, 400.0));
    let cpu1 = s.add_core(CoreSpec::new("cpu1", CoreKind::Cpu, 1.8, 60.0, 400.0));
    let icache = s.add_core(CoreSpec::new("icache", CoreKind::Cache, 0.8, 14.0, 400.0));
    let dcache = s.add_core(CoreSpec::new("dcache", CoreKind::Cache, 0.8, 13.0, 400.0));
    let dsp = s.add_core(CoreSpec::new("dsp", CoreKind::Dsp, 1.4, 40.0, 300.0));
    let sram = s.add_core(CoreSpec::new("sram", CoreKind::Memory, 1.6, 18.0, 300.0).always_on());
    let flash = s.add_core(CoreSpec::new("flash", CoreKind::Memory, 1.0, 8.0, 133.0));
    let display = s.add_core(CoreSpec::new(
        "display",
        CoreKind::Display,
        1.0,
        24.0,
        150.0,
    ));
    let audio = s.add_core(CoreSpec::new("audio", CoreKind::Audio, 0.7, 10.0, 100.0));
    let can0 = s.add_core(CoreSpec::new("can0", CoreKind::Peripheral, 0.3, 4.0, 50.0));
    let can1 = s.add_core(CoreSpec::new("can1", CoreKind::Peripheral, 0.3, 4.0, 50.0));
    let usb = s.add_core(CoreSpec::new("usb", CoreKind::Peripheral, 0.5, 7.0, 60.0));

    // CPU cluster <-> caches <-> SRAM.
    s.add_flow(TrafficFlow::new(cpu0, icache, 600.0, 12));
    s.add_flow(TrafficFlow::new(icache, cpu0, 900.0, 12));
    s.add_flow(TrafficFlow::new(cpu1, dcache, 450.0, 12));
    s.add_flow(TrafficFlow::new(dcache, cpu1, 700.0, 12));
    s.add_flow(TrafficFlow::new(icache, sram, 200.0, 16));
    s.add_flow(TrafficFlow::new(sram, icache, 260.0, 16));
    s.add_flow(TrafficFlow::new(dcache, sram, 170.0, 16));
    s.add_flow(TrafficFlow::new(sram, dcache, 210.0, 16));

    // DSP decodes audio out of SRAM.
    s.add_flow(TrafficFlow::new(dsp, sram, 220.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp, 280.0, 14));
    s.add_flow(TrafficFlow::new(dsp, audio, 25.0, 26));

    // Maps/UI frame buffer to the display.
    s.add_flow(TrafficFlow::new(sram, display, 240.0, 18));
    s.add_flow(TrafficFlow::new(flash, sram, 90.0, 24));
    s.add_flow(TrafficFlow::new(sram, flash, 40.0, 24));

    // Vehicle buses and USB media import.
    s.add_flow(TrafficFlow::new(can0, sram, 2.0, 40));
    s.add_flow(TrafficFlow::new(sram, can0, 2.0, 40));
    s.add_flow(TrafficFlow::new(can1, sram, 2.0, 40));
    s.add_flow(TrafficFlow::new(sram, can1, 2.0, 40));
    s.add_flow(TrafficFlow::new(usb, sram, 45.0, 30));
    s.add_flow(TrafficFlow::new(sram, usb, 30.0, 30));

    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::logical_partition;

    #[test]
    fn validates_with_12_cores() {
        let soc = d12_auto();
        assert_eq!(soc.core_count(), 12);
        soc.validate().unwrap();
    }

    #[test]
    fn supports_four_logical_islands() {
        let soc = d12_auto();
        let vi = logical_partition(&soc, 4).unwrap();
        assert_eq!(vi.island_count(), 4);
    }
}
