//! D36 — tablet application processor SoC (36 cores).

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;

/// Builds a 36-core tablet SoC: quad CPU with per-pair split caches, GPU,
/// two DSPs, full media pipeline, four memories (dual-channel SDRAM + SRAM
/// always-on), connectivity trio (cellular, Wi-Fi, BT) and ten peripheral
/// ports.
///
/// Natural logical island count: 7.
pub fn d36_tablet() -> SocSpec {
    let mut s = SocSpec::new("d36_tablet");

    let cpu0 = s.add_core(CoreSpec::new("cpu0", CoreKind::Cpu, 2.4, 100.0, 600.0));
    let cpu1 = s.add_core(CoreSpec::new("cpu1", CoreKind::Cpu, 2.4, 95.0, 600.0));
    let cpu2 = s.add_core(CoreSpec::new("cpu2", CoreKind::Cpu, 2.4, 90.0, 600.0));
    let cpu3 = s.add_core(CoreSpec::new("cpu3", CoreKind::Cpu, 2.4, 85.0, 600.0));
    let icache0 = s.add_core(CoreSpec::new("icache0", CoreKind::Cache, 1.0, 20.0, 600.0));
    let dcache0 = s.add_core(CoreSpec::new("dcache0", CoreKind::Cache, 1.0, 19.0, 600.0));
    let icache1 = s.add_core(CoreSpec::new("icache1", CoreKind::Cache, 1.0, 18.0, 600.0));
    let dcache1 = s.add_core(CoreSpec::new("dcache1", CoreKind::Cache, 1.0, 17.0, 600.0));
    let dma = s.add_core(CoreSpec::new("dma", CoreKind::Dma, 0.6, 14.0, 300.0));
    let security = s.add_core(CoreSpec::new(
        "security",
        CoreKind::Security,
        0.8,
        15.0,
        250.0,
    ));
    let gpu = s.add_core(CoreSpec::new("gpu", CoreKind::Gpu, 3.5, 110.0, 450.0));
    let dsp0 = s.add_core(CoreSpec::new("dsp0", CoreKind::Dsp, 1.6, 50.0, 350.0));
    let dsp1 = s.add_core(CoreSpec::new("dsp1", CoreKind::Dsp, 1.6, 48.0, 350.0));
    let viddec = s.add_core(CoreSpec::new(
        "viddec",
        CoreKind::VideoDecoder,
        2.8,
        80.0,
        300.0,
    ));
    let videnc = s.add_core(CoreSpec::new(
        "videnc",
        CoreKind::VideoEncoder,
        2.6,
        70.0,
        300.0,
    ));
    let display = s.add_core(CoreSpec::new(
        "display",
        CoreKind::Display,
        1.3,
        32.0,
        200.0,
    ));
    let imaging = s.add_core(CoreSpec::new(
        "imaging",
        CoreKind::Imaging,
        2.0,
        55.0,
        250.0,
    ));
    let audio = s.add_core(CoreSpec::new("audio", CoreKind::Audio, 0.9, 14.0, 100.0));
    let sdram0 =
        s.add_core(CoreSpec::new("sdram0", CoreKind::Memory, 3.0, 42.0, 333.0).always_on());
    let sdram1 =
        s.add_core(CoreSpec::new("sdram1", CoreKind::Memory, 3.0, 40.0, 333.0).always_on());
    let sram = s.add_core(CoreSpec::new("sram", CoreKind::Memory, 2.0, 22.0, 400.0).always_on());
    let flash = s.add_core(CoreSpec::new("flash", CoreKind::Memory, 1.2, 10.0, 133.0));
    let modem = s.add_core(CoreSpec::new("modem", CoreKind::Modem, 3.2, 75.0, 300.0));
    let wifi = s.add_core(CoreSpec::new("wifi", CoreKind::Modem, 1.8, 45.0, 250.0));
    let bt = s.add_core(CoreSpec::new("bt", CoreKind::Modem, 0.9, 15.0, 150.0));
    let usb0 = s.add_core(CoreSpec::new("usb0", CoreKind::Peripheral, 0.6, 9.0, 60.0));
    let usb1 = s.add_core(CoreSpec::new("usb1", CoreKind::Peripheral, 0.6, 8.0, 60.0));
    let uart = s.add_core(CoreSpec::new("uart", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let spi = s.add_core(CoreSpec::new("spi", CoreKind::Peripheral, 0.2, 3.0, 50.0));
    let i2c = s.add_core(CoreSpec::new("i2c", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let sdio = s.add_core(CoreSpec::new("sdio", CoreKind::Peripheral, 0.5, 8.0, 100.0));
    let gpio = s.add_core(CoreSpec::new("gpio", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let keypad = s.add_core(CoreSpec::new(
        "keypad",
        CoreKind::Peripheral,
        0.2,
        1.0,
        50.0,
    ));
    let touch = s.add_core(CoreSpec::new("touch", CoreKind::Peripheral, 0.3, 4.0, 50.0));
    let sensors = s.add_core(CoreSpec::new(
        "sensors",
        CoreKind::Peripheral,
        0.3,
        4.0,
        50.0,
    ));
    let mipi = s.add_core(CoreSpec::new("mipi", CoreKind::Peripheral, 0.4, 6.0, 100.0));

    // CPU pairs share cache slices.
    s.add_flow(TrafficFlow::new(cpu0, icache0, 800.0, 12));
    s.add_flow(TrafficFlow::new(icache0, cpu0, 1250.0, 12));
    s.add_flow(TrafficFlow::new(cpu1, icache0, 700.0, 12));
    s.add_flow(TrafficFlow::new(icache0, cpu1, 1050.0, 12));
    s.add_flow(TrafficFlow::new(cpu0, dcache0, 620.0, 12));
    s.add_flow(TrafficFlow::new(dcache0, cpu0, 950.0, 12));
    s.add_flow(TrafficFlow::new(cpu1, dcache0, 560.0, 12));
    s.add_flow(TrafficFlow::new(dcache0, cpu1, 850.0, 12));
    s.add_flow(TrafficFlow::new(cpu2, icache1, 760.0, 12));
    s.add_flow(TrafficFlow::new(icache1, cpu2, 1150.0, 12));
    s.add_flow(TrafficFlow::new(cpu3, icache1, 680.0, 12));
    s.add_flow(TrafficFlow::new(icache1, cpu3, 1000.0, 12));
    s.add_flow(TrafficFlow::new(cpu2, dcache1, 600.0, 12));
    s.add_flow(TrafficFlow::new(dcache1, cpu2, 900.0, 12));
    s.add_flow(TrafficFlow::new(cpu3, dcache1, 540.0, 12));
    s.add_flow(TrafficFlow::new(dcache1, cpu3, 820.0, 12));

    // Caches miss to the two SDRAM channels.
    s.add_flow(TrafficFlow::new(icache0, sdram0, 280.0, 16));
    s.add_flow(TrafficFlow::new(sdram0, icache0, 360.0, 16));
    s.add_flow(TrafficFlow::new(dcache0, sdram0, 240.0, 16));
    s.add_flow(TrafficFlow::new(sdram0, dcache0, 300.0, 16));
    s.add_flow(TrafficFlow::new(icache1, sdram1, 260.0, 16));
    s.add_flow(TrafficFlow::new(sdram1, icache1, 340.0, 16));
    s.add_flow(TrafficFlow::new(dcache1, sdram1, 230.0, 16));
    s.add_flow(TrafficFlow::new(sdram1, dcache1, 290.0, 16));

    // GPU streams textures/frames from channel 1.
    s.add_flow(TrafficFlow::new(gpu, sdram1, 420.0, 14));
    s.add_flow(TrafficFlow::new(sdram1, gpu, 520.0, 14));
    s.add_flow(TrafficFlow::new(gpu, display, 260.0, 18));

    // DSPs on SRAM.
    s.add_flow(TrafficFlow::new(dsp0, sram, 340.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp0, 420.0, 14));
    s.add_flow(TrafficFlow::new(dsp1, sram, 300.0, 14));
    s.add_flow(TrafficFlow::new(sram, dsp1, 360.0, 14));
    s.add_flow(TrafficFlow::new(dsp0, dsp1, 140.0, 14));

    // Media pipeline on channel 0.
    s.add_flow(TrafficFlow::new(sdram0, viddec, 380.0, 18));
    s.add_flow(TrafficFlow::new(viddec, sdram0, 300.0, 18));
    s.add_flow(TrafficFlow::new(viddec, display, 210.0, 20));
    s.add_flow(TrafficFlow::new(sdram0, display, 300.0, 18));
    s.add_flow(TrafficFlow::new(mipi, imaging, 240.0, 20));
    s.add_flow(TrafficFlow::new(imaging, videnc, 230.0, 20));
    s.add_flow(TrafficFlow::new(imaging, sdram0, 260.0, 20));
    s.add_flow(TrafficFlow::new(videnc, sdram0, 180.0, 20));
    s.add_flow(TrafficFlow::new(sdram0, videnc, 130.0, 20));
    s.add_flow(TrafficFlow::new(sram, audio, 20.0, 30));
    s.add_flow(TrafficFlow::new(audio, sram, 13.0, 30));

    // Connectivity.
    s.add_flow(TrafficFlow::new(modem, sdram0, 140.0, 20));
    s.add_flow(TrafficFlow::new(sdram0, modem, 120.0, 20));
    s.add_flow(TrafficFlow::new(wifi, sdram1, 160.0, 20));
    s.add_flow(TrafficFlow::new(sdram1, wifi, 180.0, 20));
    s.add_flow(TrafficFlow::new(bt, sram, 12.0, 30));
    s.add_flow(TrafficFlow::new(sram, bt, 10.0, 30));
    s.add_flow(TrafficFlow::new(modem, security, 80.0, 22));
    s.add_flow(TrafficFlow::new(security, sdram0, 70.0, 22));

    // DMA + storage + low-rate I/O.
    s.add_flow(TrafficFlow::new(dma, sdram0, 220.0, 18));
    s.add_flow(TrafficFlow::new(sdram0, dma, 220.0, 18));
    s.add_flow(TrafficFlow::new(dma, flash, 100.0, 24));
    s.add_flow(TrafficFlow::new(flash, dma, 130.0, 24));
    s.add_flow(TrafficFlow::new(usb0, sdram1, 70.0, 30));
    s.add_flow(TrafficFlow::new(sdram1, usb0, 90.0, 30));
    s.add_flow(TrafficFlow::new(usb1, sdram1, 50.0, 30));
    s.add_flow(TrafficFlow::new(sdram1, usb1, 60.0, 30));
    s.add_flow(TrafficFlow::new(sdio, sdram1, 55.0, 30));
    s.add_flow(TrafficFlow::new(sdram1, sdio, 65.0, 30));
    s.add_flow(TrafficFlow::new(uart, dma, 2.0, 40));
    s.add_flow(TrafficFlow::new(dma, uart, 3.0, 40));
    s.add_flow(TrafficFlow::new(spi, dma, 9.0, 40));
    s.add_flow(TrafficFlow::new(dma, spi, 11.0, 40));
    s.add_flow(TrafficFlow::new(i2c, dma, 3.0, 40));
    s.add_flow(TrafficFlow::new(dma, i2c, 4.0, 40));
    s.add_flow(TrafficFlow::new(gpio, dma, 1.0, 40));
    s.add_flow(TrafficFlow::new(dma, gpio, 2.0, 40));
    s.add_flow(TrafficFlow::new(keypad, dma, 1.0, 40));
    s.add_flow(TrafficFlow::new(touch, dma, 6.0, 36));
    s.add_flow(TrafficFlow::new(sensors, dma, 5.0, 36));
    s.add_flow(TrafficFlow::new(dma, sensors, 2.0, 36));

    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::logical_partition;

    #[test]
    fn validates_with_36_cores() {
        let soc = d36_tablet();
        assert_eq!(soc.core_count(), 36);
        soc.validate().unwrap();
    }

    #[test]
    fn supports_seven_logical_islands() {
        let vi = logical_partition(&d36_tablet(), 7).unwrap();
        assert_eq!(vi.island_count(), 7);
    }

    #[test]
    fn is_the_largest_suite_member() {
        let soc = d36_tablet();
        assert!(soc.total_core_area().mm2() > 40.0);
        assert!(soc.flow_count() > 60);
    }
}
