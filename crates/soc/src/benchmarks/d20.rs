//! D20 — cellular baseband processor SoC (20 cores).

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;

/// Builds a 20-core baseband SoC: dual control CPUs with shared caches,
/// four layer-1 DSPs plus an FFT accelerator, three memories (SDRAM and
/// SRAM0 always-on), DMA, a ciphering engine, an audio vocoder and five
/// radio/host interface ports.
///
/// Natural logical island count: 5.
pub fn d20_baseband() -> SocSpec {
    let mut s = SocSpec::new("d20_baseband");

    let cpu0 = s.add_core(CoreSpec::new("cpu0", CoreKind::Cpu, 1.8, 65.0, 400.0));
    let cpu1 = s.add_core(CoreSpec::new("cpu1", CoreKind::Cpu, 1.8, 55.0, 400.0));
    let icache = s.add_core(CoreSpec::new("icache", CoreKind::Cache, 0.8, 13.0, 400.0));
    let dcache = s.add_core(CoreSpec::new("dcache", CoreKind::Cache, 0.8, 12.0, 400.0));
    let dma = s.add_core(CoreSpec::new("dma", CoreKind::Dma, 0.5, 10.0, 300.0));
    let cipher = s.add_core(CoreSpec::new(
        "cipher",
        CoreKind::Security,
        0.7,
        12.0,
        250.0,
    ));
    let dsp0 = s.add_core(CoreSpec::new("dsp0", CoreKind::Dsp, 1.5, 48.0, 350.0));
    let dsp1 = s.add_core(CoreSpec::new("dsp1", CoreKind::Dsp, 1.5, 46.0, 350.0));
    let dsp2 = s.add_core(CoreSpec::new("dsp2", CoreKind::Dsp, 1.5, 44.0, 350.0));
    let dsp3 = s.add_core(CoreSpec::new("dsp3", CoreKind::Dsp, 1.5, 42.0, 350.0));
    let fft = s.add_core(CoreSpec::new(
        "fft",
        CoreKind::Accelerator,
        1.0,
        30.0,
        300.0,
    ));
    let vocoder = s.add_core(CoreSpec::new("vocoder", CoreKind::Audio, 0.8, 14.0, 150.0));
    let sdram = s.add_core(CoreSpec::new("sdram", CoreKind::Memory, 2.4, 30.0, 266.0).always_on());
    let sram0 = s.add_core(CoreSpec::new("sram0", CoreKind::Memory, 1.8, 20.0, 350.0).always_on());
    let sram1 = s.add_core(CoreSpec::new("sram1", CoreKind::Memory, 1.4, 14.0, 350.0));
    let rf_if = s.add_core(CoreSpec::new(
        "rf_if",
        CoreKind::Peripheral,
        0.6,
        12.0,
        150.0,
    ));
    let host_if = s.add_core(CoreSpec::new(
        "host_if",
        CoreKind::Peripheral,
        0.5,
        8.0,
        100.0,
    ));
    let usim = s.add_core(CoreSpec::new("usim", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let gpio = s.add_core(CoreSpec::new("gpio", CoreKind::Peripheral, 0.2, 2.0, 50.0));
    let timer = s.add_core(CoreSpec::new("timer", CoreKind::Peripheral, 0.2, 2.0, 50.0));

    // Control CPUs.
    s.add_flow(TrafficFlow::new(cpu0, icache, 550.0, 12));
    s.add_flow(TrafficFlow::new(icache, cpu0, 850.0, 12));
    s.add_flow(TrafficFlow::new(cpu1, dcache, 420.0, 12));
    s.add_flow(TrafficFlow::new(dcache, cpu1, 650.0, 12));
    s.add_flow(TrafficFlow::new(icache, sdram, 170.0, 16));
    s.add_flow(TrafficFlow::new(sdram, icache, 230.0, 16));
    s.add_flow(TrafficFlow::new(dcache, sdram, 150.0, 16));
    s.add_flow(TrafficFlow::new(sdram, dcache, 190.0, 16));

    // Layer-1 pipeline: RF samples -> DSP chain + FFT, buffers in SRAM0/1.
    s.add_flow(TrafficFlow::new(rf_if, dsp0, 260.0, 14));
    s.add_flow(TrafficFlow::new(dsp0, dsp1, 220.0, 14));
    s.add_flow(TrafficFlow::new(dsp1, fft, 240.0, 14));
    s.add_flow(TrafficFlow::new(fft, dsp2, 240.0, 14));
    s.add_flow(TrafficFlow::new(dsp2, dsp3, 190.0, 14));
    s.add_flow(TrafficFlow::new(dsp3, rf_if, 180.0, 14));
    s.add_flow(TrafficFlow::new(dsp0, sram0, 300.0, 14));
    s.add_flow(TrafficFlow::new(sram0, dsp0, 360.0, 14));
    s.add_flow(TrafficFlow::new(dsp1, sram0, 260.0, 14));
    s.add_flow(TrafficFlow::new(sram0, dsp1, 300.0, 14));
    s.add_flow(TrafficFlow::new(dsp2, sram1, 230.0, 14));
    s.add_flow(TrafficFlow::new(sram1, dsp2, 270.0, 14));
    s.add_flow(TrafficFlow::new(dsp3, sram1, 200.0, 14));
    s.add_flow(TrafficFlow::new(sram1, dsp3, 240.0, 14));

    // Ciphering between the protocol stack and the air interface.
    s.add_flow(TrafficFlow::new(cipher, sdram, 90.0, 20));
    s.add_flow(TrafficFlow::new(sdram, cipher, 110.0, 20));
    s.add_flow(TrafficFlow::new(dsp3, cipher, 70.0, 18));

    // Vocoder.
    s.add_flow(TrafficFlow::new(sram0, vocoder, 20.0, 28));
    s.add_flow(TrafficFlow::new(vocoder, sram0, 14.0, 28));

    // DMA, host interface and low-rate peripherals.
    s.add_flow(TrafficFlow::new(dma, sdram, 160.0, 20));
    s.add_flow(TrafficFlow::new(sdram, dma, 160.0, 20));
    s.add_flow(TrafficFlow::new(host_if, sdram, 80.0, 26));
    s.add_flow(TrafficFlow::new(sdram, host_if, 100.0, 26));
    s.add_flow(TrafficFlow::new(usim, dma, 1.0, 40));
    s.add_flow(TrafficFlow::new(dma, usim, 1.0, 40));
    s.add_flow(TrafficFlow::new(gpio, dma, 1.0, 40));
    s.add_flow(TrafficFlow::new(dma, gpio, 1.0, 40));
    s.add_flow(TrafficFlow::new(timer, cpu0, 2.0, 30));

    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::logical_partition;

    #[test]
    fn validates_with_20_cores() {
        let soc = d20_baseband();
        assert_eq!(soc.core_count(), 20);
        soc.validate().unwrap();
    }

    #[test]
    fn supports_five_logical_islands() {
        let vi = logical_partition(&d20_baseband(), 5).unwrap();
        assert_eq!(vi.island_count(), 5);
    }
}
