//! Point-to-point traffic flows.

use crate::core::CoreId;
use std::fmt;
use vi_noc_models::Bandwidth;

/// Identifier of a flow within a [`crate::SocSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) usize);

impl FlowId {
    /// Creates a flow id from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        FlowId(index)
    }

    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A unidirectional traffic flow between two cores, with its bandwidth
/// requirement and zero-load latency constraint.
///
/// This is the paper's `(v_i, v_j)` edge with `bw_{i,j}` and `lat_{i,j}`
/// (Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficFlow {
    /// Producing core.
    pub src: CoreId,
    /// Consuming core.
    pub dst: CoreId,
    /// Sustained bandwidth requirement.
    pub bandwidth: Bandwidth,
    /// Maximum tolerated zero-load latency, in NoC cycles.
    pub max_latency_cycles: u32,
}

impl TrafficFlow {
    /// Convenience constructor with bandwidth in MB/s.
    pub fn new(src: CoreId, dst: CoreId, bandwidth_mbps: f64, max_latency_cycles: u32) -> Self {
        TrafficFlow {
            src,
            dst,
            bandwidth: Bandwidth::from_mbps(bandwidth_mbps),
            max_latency_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_round_trips() {
        let id = FlowId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "f3");
    }

    #[test]
    fn constructor_converts_units() {
        let f = TrafficFlow::new(CoreId::from_index(0), CoreId::from_index(1), 250.0, 12);
        assert_eq!(f.bandwidth.mbps(), 250.0);
        assert_eq!(f.max_latency_cycles, 12);
    }
}
