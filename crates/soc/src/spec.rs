//! Whole-SoC specification: cores + traffic flows.

use crate::core::{CoreId, CoreKind, CoreSpec};
use crate::flow::{FlowId, TrafficFlow};
use std::collections::HashSet;
use std::fmt;
use vi_noc_graph::SymGraph;
use vi_noc_models::{Area, Bandwidth, Power};

/// Validation error for a [`SocSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A flow references a core index outside the spec.
    DanglingFlow {
        /// Index of the offending flow.
        flow: usize,
    },
    /// A flow has identical source and destination.
    SelfFlow {
        /// Index of the offending flow.
        flow: usize,
    },
    /// A flow requires zero or negative bandwidth.
    ZeroBandwidth {
        /// Index of the offending flow.
        flow: usize,
    },
    /// A flow's latency constraint is zero cycles.
    ZeroLatency {
        /// Index of the offending flow.
        flow: usize,
    },
    /// Two cores share the same instance name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DanglingFlow { flow } => {
                write!(f, "flow {flow} references a core outside the spec")
            }
            SpecError::SelfFlow { flow } => write!(f, "flow {flow} connects a core to itself"),
            SpecError::ZeroBandwidth { flow } => write!(f, "flow {flow} has zero bandwidth"),
            SpecError::ZeroLatency { flow } => {
                write!(f, "flow {flow} has a zero-cycle latency constraint")
            }
            SpecError::DuplicateName { name } => write!(f, "duplicate core name `{name}`"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete SoC communication specification: the input to NoC synthesis.
///
/// Build one with [`SocSpec::new`] + [`add_core`](SocSpec::add_core) +
/// [`add_flow`](SocSpec::add_flow), then call [`validate`](SocSpec::validate)
/// (the bundled benchmarks are pre-validated in tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SocSpec {
    name: String,
    cores: Vec<CoreSpec>,
    flows: Vec<TrafficFlow>,
}

impl SocSpec {
    /// Creates an empty spec named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SocSpec {
            name: name.into(),
            cores: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a core and returns its id.
    pub fn add_core(&mut self, core: CoreSpec) -> CoreId {
        let id = CoreId(self.cores.len());
        self.cores.push(core);
        id
    }

    /// Adds a traffic flow and returns its id.
    ///
    /// Malformed flows are accepted here and reported by
    /// [`validate`](SocSpec::validate); use
    /// [`try_add_flow`](SocSpec::try_add_flow) to reject them immediately.
    pub fn add_flow(&mut self, flow: TrafficFlow) -> FlowId {
        let id = FlowId(self.flows.len());
        self.flows.push(flow);
        id
    }

    /// Adds a traffic flow, rejecting malformed ones up front instead of
    /// deferring to [`validate`](SocSpec::validate) (the data-driven
    /// ingestion path uses this so a bad flow is reported at its source).
    ///
    /// # Errors
    ///
    /// The same per-flow violations `validate` reports: dangling or
    /// self-connecting endpoints, zero bandwidth, zero latency.
    pub fn try_add_flow(&mut self, flow: TrafficFlow) -> Result<FlowId, SpecError> {
        let i = self.flows.len();
        if flow.src.0 >= self.cores.len() || flow.dst.0 >= self.cores.len() {
            return Err(SpecError::DanglingFlow { flow: i });
        }
        if flow.src == flow.dst {
            return Err(SpecError::SelfFlow { flow: i });
        }
        let bw = flow.bandwidth.bytes_per_s();
        if !bw.is_finite() || bw <= 0.0 {
            return Err(SpecError::ZeroBandwidth { flow: i });
        }
        if flow.max_latency_cycles == 0 {
            return Err(SpecError::ZeroLatency { flow: i });
        }
        Ok(self.add_flow(flow))
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Borrows a core by id.
    pub fn core(&self, id: CoreId) -> &CoreSpec {
        &self.cores[id.0]
    }

    /// Borrows a core by id, `None` if the id is out of range (the
    /// panic-free lookup for externally supplied ids).
    pub fn get_core(&self, id: CoreId) -> Option<&CoreSpec> {
        self.cores.get(id.0)
    }

    /// Borrows a flow by id.
    pub fn flow(&self, id: FlowId) -> &TrafficFlow {
        &self.flows[id.0]
    }

    /// Borrows a flow by id, `None` if the id is out of range.
    pub fn get_flow(&self, id: FlowId) -> Option<&TrafficFlow> {
        self.flows.get(id.0)
    }

    /// All cores, indexable by `CoreId::index`.
    pub fn cores(&self) -> &[CoreSpec] {
        &self.cores
    }

    /// All flows, indexable by `FlowId::index`.
    pub fn flows(&self) -> &[TrafficFlow] {
        &self.flows
    }

    /// Iterates over core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.cores.len()).map(CoreId)
    }

    /// Iterates over flow ids.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        (0..self.flows.len()).map(FlowId)
    }

    /// Checks structural validity of the spec.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: dangling/self flows, zero
    /// bandwidth or latency, duplicate core names.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut names = HashSet::new();
        for core in &self.cores {
            if !names.insert(core.name.as_str()) {
                return Err(SpecError::DuplicateName {
                    name: core.name.clone(),
                });
            }
        }
        for (i, flow) in self.flows.iter().enumerate() {
            if flow.src.0 >= self.cores.len() || flow.dst.0 >= self.cores.len() {
                return Err(SpecError::DanglingFlow { flow: i });
            }
            if flow.src == flow.dst {
                return Err(SpecError::SelfFlow { flow: i });
            }
            // Non-finite bandwidths (NaN would slip through a plain
            // `<= 0.0` comparison) must not reach the synthesis math.
            let bw = flow.bandwidth.bytes_per_s();
            if !bw.is_finite() || bw <= 0.0 {
                return Err(SpecError::ZeroBandwidth { flow: i });
            }
            if flow.max_latency_cycles == 0 {
                return Err(SpecError::ZeroLatency { flow: i });
            }
        }
        Ok(())
    }

    /// Total silicon area of all cores (NoC excluded).
    pub fn total_core_area(&self) -> Area {
        self.cores.iter().map(|c| c.area).sum()
    }

    /// Total active dynamic power of all cores (NoC excluded).
    pub fn total_core_dyn_power(&self) -> Power {
        self.cores.iter().map(|c| c.dyn_power).sum()
    }

    /// The highest flow bandwidth (the paper's `max_bw`).
    pub fn max_bandwidth(&self) -> Bandwidth {
        self.flows
            .iter()
            .map(|f| f.bandwidth)
            .fold(Bandwidth::ZERO, |a, b| if b > a { b } else { a })
    }

    /// The tightest latency constraint (the paper's `min_lat`), in cycles.
    pub fn min_latency_cycles(&self) -> u32 {
        self.flows
            .iter()
            .map(|f| f.max_latency_cycles)
            .min()
            .unwrap_or(0)
    }

    /// Sum of flow bandwidths into and out of `core` — `(in, out)`.
    pub fn core_io_bandwidth(&self, core: CoreId) -> (Bandwidth, Bandwidth) {
        let mut inb = Bandwidth::ZERO;
        let mut outb = Bandwidth::ZERO;
        for f in &self.flows {
            if f.dst == core {
                inb += f.bandwidth;
            }
            if f.src == core {
                outb += f.bandwidth;
            }
        }
        (inb, outb)
    }

    /// Builds the undirected core-to-core traffic graph, edge weights in
    /// MB/s (both directions accumulated). This is the input to
    /// communication-based VI partitioning.
    pub fn traffic_graph(&self) -> SymGraph {
        let mut g = SymGraph::new(self.cores.len());
        for f in &self.flows {
            if f.src != f.dst {
                g.add_edge(f.src.0, f.dst.0, f.bandwidth.mbps());
            }
        }
        g
    }

    /// Ids of cores whose kind is `kind`.
    pub fn cores_of_kind(&self, kind: CoreKind) -> Vec<CoreId> {
        self.core_ids()
            .filter(|&id| self.core(id).kind == kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreKind;

    fn tiny() -> SocSpec {
        let mut s = SocSpec::new("tiny");
        let a = s.add_core(CoreSpec::new("cpu0", CoreKind::Cpu, 2.0, 80.0, 400.0));
        let b = s.add_core(CoreSpec::new("mem0", CoreKind::Memory, 1.5, 30.0, 200.0).always_on());
        s.add_flow(TrafficFlow::new(a, b, 400.0, 10));
        s.add_flow(TrafficFlow::new(b, a, 600.0, 10));
        s
    }

    #[test]
    fn valid_spec_passes() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn detects_self_flow() {
        let mut s = tiny();
        let a = CoreId::from_index(0);
        s.add_flow(TrafficFlow::new(a, a, 10.0, 5));
        assert_eq!(s.validate(), Err(SpecError::SelfFlow { flow: 2 }));
    }

    #[test]
    fn detects_dangling_flow() {
        let mut s = tiny();
        s.add_flow(TrafficFlow::new(
            CoreId::from_index(0),
            CoreId::from_index(99),
            10.0,
            5,
        ));
        assert!(matches!(s.validate(), Err(SpecError::DanglingFlow { .. })));
    }

    #[test]
    fn detects_duplicate_names() {
        let mut s = tiny();
        s.add_core(CoreSpec::new("cpu0", CoreKind::Cpu, 1.0, 10.0, 100.0));
        assert!(matches!(s.validate(), Err(SpecError::DuplicateName { .. })));
    }

    #[test]
    fn detects_zero_bandwidth_and_latency() {
        let mut s = tiny();
        s.add_flow(TrafficFlow::new(
            CoreId::from_index(0),
            CoreId::from_index(1),
            0.0,
            5,
        ));
        assert!(matches!(s.validate(), Err(SpecError::ZeroBandwidth { .. })));

        let mut s2 = tiny();
        s2.add_flow(TrafficFlow::new(
            CoreId::from_index(0),
            CoreId::from_index(1),
            5.0,
            0,
        ));
        assert!(matches!(s2.validate(), Err(SpecError::ZeroLatency { .. })));
    }

    #[test]
    fn try_add_flow_rejects_malformed_flows_eagerly() {
        let a = CoreId::from_index(0);
        let b = CoreId::from_index(1);
        let mut s = tiny();
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, CoreId::from_index(9), 5.0, 5)),
            Err(SpecError::DanglingFlow { flow: 2 })
        );
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, a, 5.0, 5)),
            Err(SpecError::SelfFlow { flow: 2 })
        );
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, b, 0.0, 5)),
            Err(SpecError::ZeroBandwidth { flow: 2 })
        );
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, b, f64::NAN, 5)),
            Err(SpecError::ZeroBandwidth { flow: 2 })
        );
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, b, 5.0, 0)),
            Err(SpecError::ZeroLatency { flow: 2 })
        );
        // Nothing was added by the rejected calls; a good flow lands at 2.
        assert_eq!(s.flow_count(), 2);
        assert_eq!(
            s.try_add_flow(TrafficFlow::new(a, b, 5.0, 5)),
            Ok(FlowId::from_index(2))
        );
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn get_core_and_get_flow_are_panic_free() {
        let s = tiny();
        assert!(s.get_core(CoreId::from_index(0)).is_some());
        assert!(s.get_core(CoreId::from_index(99)).is_none());
        assert!(s.get_flow(FlowId::from_index(1)).is_some());
        assert!(s.get_flow(FlowId::from_index(99)).is_none());
    }

    #[test]
    fn aggregates_are_correct() {
        let s = tiny();
        assert!((s.total_core_area().mm2() - 3.5).abs() < 1e-12);
        assert!((s.total_core_dyn_power().mw() - 110.0).abs() < 1e-12);
        assert_eq!(s.max_bandwidth().mbps(), 600.0);
        assert_eq!(s.min_latency_cycles(), 10);
    }

    #[test]
    fn io_bandwidth_sums_directions_separately() {
        let s = tiny();
        let (inb, outb) = s.core_io_bandwidth(CoreId::from_index(0));
        assert_eq!(inb.mbps(), 600.0);
        assert_eq!(outb.mbps(), 400.0);
    }

    #[test]
    fn traffic_graph_symmetrizes() {
        let s = tiny();
        let g = s.traffic_graph();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_weight(0, 1), 1000.0);
    }

    #[test]
    fn cores_of_kind_filters() {
        let s = tiny();
        assert_eq!(s.cores_of_kind(CoreKind::Cpu).len(), 1);
        assert_eq!(s.cores_of_kind(CoreKind::Dsp).len(), 0);
    }
}
