//! Core → voltage-island assignment strategies.
//!
//! The assignment of cores to voltage islands is an *input* to the paper's
//! synthesis algorithm (§3.1: "The cores of the design are assigned to
//! different VIs, which is given as an input to our method"). The paper's
//! evaluation compares two ways of producing that input (§5):
//!
//! * [`logical_partition`] — group by functionality: shared memories in one
//!   (never shut down) island, processors with their caches, the media
//!   pipeline together, peripherals together. This mirrors how a designer
//!   would draw islands, and is the "logical partitioning" curve of
//!   Figures 2–3.
//! * [`communication_partition`] — min-cut clustering of the core traffic
//!   graph, putting heavily-communicating cores in the same island. This is
//!   the "communication based partitioning" curve.

mod communication;
mod logical;

pub use communication::communication_partition;
pub use logical::logical_partition;

use crate::core::CoreId;
use crate::spec::SocSpec;
use std::fmt;

/// Error produced by partitioning strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The requested island count cannot be realized for this spec.
    UnsupportedIslandCount {
        /// Requested island count.
        requested: usize,
        /// Number of cores in the spec.
        cores: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnsupportedIslandCount { requested, cores } => write!(
                f,
                "cannot split {cores} cores into {requested} voltage islands"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// An assignment of every core of a spec to a voltage island.
///
/// Islands are dense indices `0..island_count`. An island is *always-on* if
/// it contains at least one core marked [`crate::CoreSpec::always_on`]
/// (e.g. shared memories): it can never be power-gated, and in exchange the
/// synthesis flow may treat it as a safe transit island.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViAssignment {
    island_of: Vec<usize>,
    island_count: usize,
    always_on: Vec<bool>,
}

impl ViAssignment {
    /// Creates an assignment from an explicit island index per core.
    ///
    /// `always_on` is derived from the spec's core flags.
    ///
    /// # Panics
    ///
    /// Panics if `island_of.len() != spec.core_count()`, if any island index
    /// is `>= island_count`, or if some island in `0..island_count` is empty.
    pub fn new(spec: &SocSpec, island_count: usize, island_of: Vec<usize>) -> Self {
        assert_eq!(
            island_of.len(),
            spec.core_count(),
            "assignment length must match core count"
        );
        assert!(island_count > 0, "need at least one island");
        let mut seen = vec![false; island_count];
        for &isl in &island_of {
            assert!(isl < island_count, "island index out of range");
            seen[isl] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every island in 0..island_count must hold at least one core"
        );
        let mut always_on = vec![false; island_count];
        for id in spec.core_ids() {
            if spec.core(id).always_on {
                always_on[island_of[id.index()]] = true;
            }
        }
        ViAssignment {
            island_of,
            island_count,
            always_on,
        }
    }

    /// Number of islands.
    pub fn island_count(&self) -> usize {
        self.island_count
    }

    /// Island of core `id`.
    pub fn island_of(&self, id: CoreId) -> usize {
        self.island_of[id.index()]
    }

    /// Raw island index per core.
    pub fn assignment(&self) -> &[usize] {
        &self.island_of
    }

    /// Which islands can never be shut down.
    pub fn always_on_islands(&self) -> &[bool] {
        &self.always_on
    }

    /// Returns `true` if `island` may be power-gated.
    pub fn can_shutdown(&self, island: usize) -> bool {
        !self.always_on[island]
    }

    /// Core ids grouped per island.
    pub fn cores_per_island(&self) -> Vec<Vec<CoreId>> {
        let mut groups = vec![Vec::new(); self.island_count];
        for (idx, &isl) in self.island_of.iter().enumerate() {
            groups[isl].push(CoreId::from_index(idx));
        }
        groups
    }

    /// Number of cores in `island`.
    pub fn island_size(&self, island: usize) -> usize {
        self.island_of.iter().filter(|&&i| i == island).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreKind, CoreSpec};
    use crate::flow::TrafficFlow;

    fn spec() -> SocSpec {
        let mut s = SocSpec::new("t");
        let a = s.add_core(CoreSpec::new("cpu", CoreKind::Cpu, 1.0, 10.0, 100.0));
        let b = s.add_core(CoreSpec::new("mem", CoreKind::Memory, 1.0, 10.0, 100.0).always_on());
        let c = s.add_core(CoreSpec::new("per", CoreKind::Peripheral, 1.0, 1.0, 50.0));
        s.add_flow(TrafficFlow::new(a, b, 100.0, 10));
        s.add_flow(TrafficFlow::new(c, b, 10.0, 30));
        s
    }

    #[test]
    fn always_on_propagates_from_cores() {
        let s = spec();
        let vi = ViAssignment::new(&s, 2, vec![0, 1, 0]);
        assert!(!vi.always_on_islands()[0]);
        assert!(vi.always_on_islands()[1]);
        assert!(vi.can_shutdown(0));
        assert!(!vi.can_shutdown(1));
    }

    #[test]
    fn groups_cores_per_island() {
        let s = spec();
        let vi = ViAssignment::new(&s, 2, vec![0, 1, 0]);
        let groups = vi.cores_per_island();
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1], vec![CoreId::from_index(1)]);
        assert_eq!(vi.island_size(0), 2);
    }

    #[test]
    #[should_panic(expected = "must hold at least one core")]
    fn rejects_empty_islands() {
        let s = spec();
        ViAssignment::new(&s, 3, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn rejects_wrong_length() {
        let s = spec();
        ViAssignment::new(&s, 1, vec![0, 0]);
    }
}
