//! Core → voltage-island assignment strategies.
//!
//! The assignment of cores to voltage islands is an *input* to the paper's
//! synthesis algorithm (§3.1: "The cores of the design are assigned to
//! different VIs, which is given as an input to our method"). The paper's
//! evaluation compares two ways of producing that input (§5):
//!
//! * [`logical_partition`] — group by functionality: shared memories in one
//!   (never shut down) island, processors with their caches, the media
//!   pipeline together, peripherals together. This mirrors how a designer
//!   would draw islands, and is the "logical partitioning" curve of
//!   Figures 2–3.
//! * [`communication_partition`] — min-cut clustering of the core traffic
//!   graph, putting heavily-communicating cores in the same island. This is
//!   the "communication based partitioning" curve.

mod communication;
mod logical;

pub use communication::communication_partition;
pub use logical::logical_partition;

use crate::core::CoreId;
use crate::spec::SocSpec;
use std::fmt;

/// Error produced by partitioning strategies and explicit assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The requested island count cannot be realized for this spec.
    UnsupportedIslandCount {
        /// Requested island count.
        requested: usize,
        /// Number of cores in the spec.
        cores: usize,
    },
    /// An explicit assignment does not list exactly one island per core.
    AssignmentLengthMismatch {
        /// Cores in the spec.
        cores: usize,
        /// Entries in the assignment.
        entries: usize,
    },
    /// An explicit assignment references an island index `>= island_count`.
    IslandOutOfRange {
        /// The offending island index.
        island: usize,
        /// The declared island count.
        count: usize,
    },
    /// An island in `0..island_count` holds no core.
    EmptyIsland {
        /// The empty island.
        island: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnsupportedIslandCount { requested, cores } => write!(
                f,
                "cannot split {cores} cores into {requested} voltage islands"
            ),
            PartitionError::AssignmentLengthMismatch { cores, entries } => write!(
                f,
                "assignment length must match core count ({entries} entries for {cores} cores)"
            ),
            PartitionError::IslandOutOfRange { island, count } => {
                write!(f, "island index {island} out of range 0..{count}")
            }
            PartitionError::EmptyIsland { island } => write!(
                f,
                "island {island}: every island in 0..island_count must hold at least one core"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// An assignment of every core of a spec to a voltage island.
///
/// Islands are dense indices `0..island_count`. An island is *always-on* if
/// it contains at least one core marked [`crate::CoreSpec::always_on`]
/// (e.g. shared memories): it can never be power-gated, and in exchange the
/// synthesis flow may treat it as a safe transit island.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViAssignment {
    island_of: Vec<usize>,
    island_count: usize,
    always_on: Vec<bool>,
}

impl ViAssignment {
    /// Creates an assignment from an explicit island index per core.
    ///
    /// `always_on` is derived from the spec's core flags.
    ///
    /// # Panics
    ///
    /// Panics if `island_of.len() != spec.core_count()`, if any island index
    /// is `>= island_count`, or if some island in `0..island_count` is empty.
    /// Use [`ViAssignment::try_new`] to get those failures as values instead
    /// (the data-driven scenario pipeline does).
    pub fn new(spec: &SocSpec, island_count: usize, island_of: Vec<usize>) -> Self {
        Self::try_new(spec, island_count, island_of).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ViAssignment::new`]: every malformed-assignment
    /// case that `new` would panic on is returned as a [`PartitionError`].
    ///
    /// # Errors
    ///
    /// [`PartitionError::AssignmentLengthMismatch`] if `island_of` does not
    /// list exactly one island per core,
    /// [`PartitionError::UnsupportedIslandCount`] if `island_count` is zero,
    /// [`PartitionError::IslandOutOfRange`] if an entry is `>= island_count`,
    /// and [`PartitionError::EmptyIsland`] if some island holds no core.
    pub fn try_new(
        spec: &SocSpec,
        island_count: usize,
        island_of: Vec<usize>,
    ) -> Result<Self, PartitionError> {
        if island_of.len() != spec.core_count() {
            return Err(PartitionError::AssignmentLengthMismatch {
                cores: spec.core_count(),
                entries: island_of.len(),
            });
        }
        if island_count == 0 {
            return Err(PartitionError::UnsupportedIslandCount {
                requested: 0,
                cores: spec.core_count(),
            });
        }
        let mut seen = vec![false; island_count];
        for &isl in &island_of {
            if isl >= island_count {
                return Err(PartitionError::IslandOutOfRange {
                    island: isl,
                    count: island_count,
                });
            }
            seen[isl] = true;
        }
        if let Some(island) = seen.iter().position(|&s| !s) {
            return Err(PartitionError::EmptyIsland { island });
        }
        let mut always_on = vec![false; island_count];
        for id in spec.core_ids() {
            if spec.core(id).always_on {
                always_on[island_of[id.index()]] = true;
            }
        }
        Ok(ViAssignment {
            island_of,
            island_count,
            always_on,
        })
    }

    /// Number of islands.
    pub fn island_count(&self) -> usize {
        self.island_count
    }

    /// Island of core `id`.
    pub fn island_of(&self, id: CoreId) -> usize {
        self.island_of[id.index()]
    }

    /// Raw island index per core.
    pub fn assignment(&self) -> &[usize] {
        &self.island_of
    }

    /// Which islands can never be shut down.
    pub fn always_on_islands(&self) -> &[bool] {
        &self.always_on
    }

    /// Returns `true` if `island` may be power-gated.
    pub fn can_shutdown(&self, island: usize) -> bool {
        !self.always_on[island]
    }

    /// Core ids grouped per island.
    pub fn cores_per_island(&self) -> Vec<Vec<CoreId>> {
        let mut groups = vec![Vec::new(); self.island_count];
        for (idx, &isl) in self.island_of.iter().enumerate() {
            groups[isl].push(CoreId::from_index(idx));
        }
        groups
    }

    /// Number of cores in `island`.
    pub fn island_size(&self, island: usize) -> usize {
        self.island_of.iter().filter(|&&i| i == island).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreKind, CoreSpec};
    use crate::flow::TrafficFlow;

    fn spec() -> SocSpec {
        let mut s = SocSpec::new("t");
        let a = s.add_core(CoreSpec::new("cpu", CoreKind::Cpu, 1.0, 10.0, 100.0));
        let b = s.add_core(CoreSpec::new("mem", CoreKind::Memory, 1.0, 10.0, 100.0).always_on());
        let c = s.add_core(CoreSpec::new("per", CoreKind::Peripheral, 1.0, 1.0, 50.0));
        s.add_flow(TrafficFlow::new(a, b, 100.0, 10));
        s.add_flow(TrafficFlow::new(c, b, 10.0, 30));
        s
    }

    #[test]
    fn always_on_propagates_from_cores() {
        let s = spec();
        let vi = ViAssignment::new(&s, 2, vec![0, 1, 0]);
        assert!(!vi.always_on_islands()[0]);
        assert!(vi.always_on_islands()[1]);
        assert!(vi.can_shutdown(0));
        assert!(!vi.can_shutdown(1));
    }

    #[test]
    fn groups_cores_per_island() {
        let s = spec();
        let vi = ViAssignment::new(&s, 2, vec![0, 1, 0]);
        let groups = vi.cores_per_island();
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1], vec![CoreId::from_index(1)]);
        assert_eq!(vi.island_size(0), 2);
    }

    #[test]
    #[should_panic(expected = "must hold at least one core")]
    fn rejects_empty_islands() {
        let s = spec();
        ViAssignment::new(&s, 3, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn rejects_wrong_length() {
        let s = spec();
        ViAssignment::new(&s, 1, vec![0, 0]);
    }

    #[test]
    fn try_new_returns_every_malformed_case_as_a_value() {
        let s = spec();
        assert_eq!(
            ViAssignment::try_new(&s, 1, vec![0, 0]),
            Err(PartitionError::AssignmentLengthMismatch {
                cores: 3,
                entries: 2
            })
        );
        assert_eq!(
            ViAssignment::try_new(&s, 0, vec![0, 0, 0]),
            Err(PartitionError::UnsupportedIslandCount {
                requested: 0,
                cores: 3
            })
        );
        assert_eq!(
            ViAssignment::try_new(&s, 2, vec![0, 5, 0]),
            Err(PartitionError::IslandOutOfRange {
                island: 5,
                count: 2
            })
        );
        assert_eq!(
            ViAssignment::try_new(&s, 3, vec![0, 0, 0]),
            Err(PartitionError::EmptyIsland { island: 1 })
        );
        let ok = ViAssignment::try_new(&s, 2, vec![0, 1, 0]).unwrap();
        assert_eq!(ok.island_count(), 2);
    }
}
