//! Logical (function-based) voltage-island partitioning.

use super::{PartitionError, ViAssignment};
use crate::core::CoreKind;
use crate::spec::SocSpec;

/// Functional groups ordered by the split hierarchy.
///
/// Logical partitioning mimics a designer's island plan: islands hold cores
/// with related function (and therefore correlated activity and similar
/// voltage/frequency needs). The hierarchy below is cut at increasing depth
/// to produce 1..=7 islands, matching the paper's sweep:
///
/// * k=1: everything together (the reference design point)
/// * k=2: memories (always-on) | rest
/// * k=3: memories | compute | media+io
/// * k=4: memories | compute | media | io
/// * k=5: memories | cpu-side | dsp-side | media | io
/// * k=6: memories | cpu-side | dsp-side | video | audio+imaging | io
/// * k=7: memories | cpu-side | dsp-side | video | audio+imaging |
///   peripherals | connectivity
///
/// `k = core_count` puts every core in its own island (the paper's rightmost
/// data point, 26 islands for the D26 SoC).
fn group_of(kind: CoreKind, k: usize) -> usize {
    use CoreKind::*;
    // Deepest split (k = 7): 7 functional groups.
    let deep = match kind {
        Memory => 0,
        Cpu | Cache | Dma | Security => 1,
        Dsp | Gpu | Accelerator => 2,
        VideoDecoder | VideoEncoder | Display => 3,
        Audio | Imaging => 4,
        Peripheral => 5,
        Modem => 6,
    };
    // Merge groups according to how shallow the requested cut is.
    match k {
        0 | 1 => 0,
        2 => {
            if deep == 0 {
                0
            } else {
                1
            }
        }
        3 => match deep {
            0 => 0,
            1 | 2 => 1,
            _ => 2,
        },
        4 => match deep {
            0 => 0,
            1 | 2 => 1,
            3 | 4 => 2,
            _ => 3,
        },
        5 => match deep {
            0 => 0,
            1 => 1,
            2 => 2,
            3 | 4 => 3,
            _ => 4,
        },
        6 => match deep {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 3,
            4 => 4,
            _ => 5,
        },
        _ => deep,
    }
}

/// Partitions `spec` into `k` voltage islands by core functionality.
///
/// Supported island counts are `1..=7` (the functional hierarchy above) and
/// `spec.core_count()` (one island per core). If a functional group is empty
/// for this spec, islands are renumbered densely, and the *requested* count
/// must still be realizable — otherwise an error is returned.
///
/// # Errors
///
/// [`PartitionError::UnsupportedIslandCount`] if `k` is zero, exceeds the
/// core count, is between 8 and `core_count - 1`, or more islands were
/// requested than this spec's functional mix can populate.
pub fn logical_partition(spec: &SocSpec, k: usize) -> Result<ViAssignment, PartitionError> {
    let n = spec.core_count();
    let err = || PartitionError::UnsupportedIslandCount {
        requested: k,
        cores: n,
    };
    if k == 0 || k > n {
        return Err(err());
    }
    if k == n {
        return Ok(ViAssignment::new(spec, n, (0..n).collect()));
    }
    if k > 7 {
        return Err(err());
    }

    let raw: Vec<usize> = spec.cores().iter().map(|c| group_of(c.kind, k)).collect();
    // Renumber densely in order of first appearance by group index order
    // (keep group 0 = memories first for stable reporting).
    let mut remap = [usize::MAX; 7];
    let mut next = 0;
    for (g, slot) in remap.iter_mut().enumerate() {
        if raw.contains(&g) {
            *slot = next;
            next += 1;
        }
    }
    if next != k {
        return Err(err());
    }
    let island_of: Vec<usize> = raw.into_iter().map(|g| remap[g]).collect();
    Ok(ViAssignment::new(spec, k, island_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::core::CoreKind;

    #[test]
    fn d26_supports_paper_sweep() {
        let soc = benchmarks::d26_mobile();
        for k in [1usize, 2, 3, 4, 5, 6, 7] {
            let vi = logical_partition(&soc, k).unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(vi.island_count(), k);
        }
        let all = logical_partition(&soc, 26).unwrap();
        assert_eq!(all.island_count(), 26);
    }

    #[test]
    fn memory_island_is_always_on() {
        let soc = benchmarks::d26_mobile();
        for k in 2..=7 {
            let vi = logical_partition(&soc, k).unwrap();
            // Island 0 is the memory island by construction.
            let mem_core = soc.cores_of_kind(CoreKind::Memory)[0];
            let mem_island = vi.island_of(mem_core);
            assert!(
                !vi.can_shutdown(mem_island),
                "k={k}: shared-memory island must be always-on"
            );
        }
    }

    #[test]
    fn memories_stay_together_until_discrete() {
        let soc = benchmarks::d26_mobile();
        let vi = logical_partition(&soc, 6).unwrap();
        let mems = soc.cores_of_kind(CoreKind::Memory);
        let first = vi.island_of(mems[0]);
        for &m in &mems {
            assert_eq!(vi.island_of(m), first);
        }
    }

    #[test]
    fn cpus_and_caches_share_an_island() {
        let soc = benchmarks::d26_mobile();
        let vi = logical_partition(&soc, 7).unwrap();
        let cpu = soc.cores_of_kind(CoreKind::Cpu)[0];
        let cache = soc.cores_of_kind(CoreKind::Cache)[0];
        assert_eq!(vi.island_of(cpu), vi.island_of(cache));
    }

    #[test]
    fn rejects_unrealizable_counts() {
        let soc = benchmarks::d26_mobile();
        assert!(logical_partition(&soc, 0).is_err());
        assert!(logical_partition(&soc, 8).is_err());
        assert!(logical_partition(&soc, 25).is_err());
        assert!(logical_partition(&soc, 27).is_err());
    }

    #[test]
    fn single_island_is_reference_point() {
        let soc = benchmarks::d26_mobile();
        let vi = logical_partition(&soc, 1).unwrap();
        assert!(vi.assignment().iter().all(|&i| i == 0));
    }
}
