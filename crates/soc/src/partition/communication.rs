//! Communication-based voltage-island partitioning.

use super::{PartitionError, ViAssignment};
use crate::spec::SocSpec;
use vi_noc_graph::{partition_kway, PartitionConfig};

/// Partitions `spec` into `k` voltage islands by min-cut clustering of the
/// core traffic graph: cores with high mutual bandwidth land in the same
/// island, so most heavy flows never cross an island boundary.
///
/// This is the "communication based partitioning" of the paper's §5 — the
/// strategy that lets the NoC run some islands at lower frequency and
/// *reduce* dynamic power below the single-island reference (Figure 2).
///
/// Deterministic for a fixed `seed`.
///
/// # Errors
///
/// [`PartitionError::UnsupportedIslandCount`] if `k` is zero or exceeds the
/// core count.
pub fn communication_partition(
    spec: &SocSpec,
    k: usize,
    seed: u64,
) -> Result<ViAssignment, PartitionError> {
    let n = spec.core_count();
    if k == 0 || k > n {
        return Err(PartitionError::UnsupportedIslandCount {
            requested: k,
            cores: n,
        });
    }
    let g = spec.traffic_graph();
    let cfg = PartitionConfig {
        seed,
        // Allow fairly unbalanced islands: traffic clusters are what matter,
        // not equal core counts.
        epsilon: 0.6,
        ..PartitionConfig::default()
    };
    let p = partition_kway(&g, k, &cfg);
    Ok(ViAssignment::new(spec, k, p.assignment().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::core::{CoreKind, CoreSpec};
    use crate::flow::TrafficFlow;

    #[test]
    fn d26_supports_full_sweep() {
        let soc = benchmarks::d26_mobile();
        for k in [1usize, 2, 3, 4, 5, 6, 7, 26] {
            let vi = communication_partition(&soc, k, 1).unwrap();
            assert_eq!(vi.island_count(), k);
            // Every island non-empty is enforced by construction; also check
            // every core is mapped.
            assert_eq!(vi.assignment().len(), 26);
        }
    }

    #[test]
    fn heavy_pairs_share_an_island() {
        // Two hot pairs, one cold link between them.
        let mut s = SocSpec::new("pairs");
        let a = s.add_core(CoreSpec::new("a", CoreKind::Cpu, 1.0, 10.0, 100.0));
        let b = s.add_core(CoreSpec::new("b", CoreKind::Cache, 1.0, 10.0, 100.0));
        let c = s.add_core(CoreSpec::new("c", CoreKind::Dsp, 1.0, 10.0, 100.0));
        let d = s.add_core(CoreSpec::new("d", CoreKind::Memory, 1.0, 10.0, 100.0));
        s.add_flow(TrafficFlow::new(a, b, 1000.0, 10));
        s.add_flow(TrafficFlow::new(c, d, 1000.0, 10));
        s.add_flow(TrafficFlow::new(b, c, 10.0, 30));
        let vi = communication_partition(&s, 2, 7).unwrap();
        assert_eq!(vi.island_of(a), vi.island_of(b));
        assert_eq!(vi.island_of(c), vi.island_of(d));
        assert_ne!(vi.island_of(a), vi.island_of(c));
    }

    #[test]
    fn cut_bandwidth_not_worse_than_logical() {
        // The whole point of communication partitioning: less bandwidth
        // crosses island boundaries than with the functional grouping.
        let soc = benchmarks::d26_mobile();
        let g = soc.traffic_graph();
        for k in [2usize, 4, 6] {
            let comm = communication_partition(&soc, k, 11).unwrap();
            let logi = crate::partition::logical_partition(&soc, k).unwrap();
            let cut = |a: &[usize]| {
                let mut c = 0.0;
                for u in 0..g.len() {
                    for &(v, w) in g.neighbors(u) {
                        if u < v && a[u] != a[v] {
                            c += w;
                        }
                    }
                }
                c
            };
            assert!(
                cut(comm.assignment()) <= cut(logi.assignment()) + 1e-9,
                "k={k}: communication cut should not exceed logical cut"
            );
        }
    }

    #[test]
    fn rejects_bad_counts() {
        let soc = benchmarks::d26_mobile();
        assert!(communication_partition(&soc, 0, 0).is_err());
        assert!(communication_partition(&soc, 27, 0).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let soc = benchmarks::d26_mobile();
        let a = communication_partition(&soc, 5, 42).unwrap();
        let b = communication_partition(&soc, 5, 42).unwrap();
        assert_eq!(a, b);
    }
}
