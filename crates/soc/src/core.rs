//! Core (IP block) descriptions.

use std::fmt;
use vi_noc_models::{Area, Frequency, Power};

/// Identifier of a core within a [`crate::SocSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub(crate) usize);

impl CoreId {
    /// Creates a core id from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        CoreId(index)
    }

    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Functional category of a core, used by logical VI partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CoreKind {
    /// General-purpose processor.
    Cpu,
    /// Digital signal processor.
    Dsp,
    /// Graphics processor.
    Gpu,
    /// Instruction or data cache slice.
    Cache,
    /// DMA engine.
    Dma,
    /// Memory controller / on-chip memory.
    Memory,
    /// Video decoder engine.
    VideoDecoder,
    /// Video encoder engine.
    VideoEncoder,
    /// Camera/imaging signal processor.
    Imaging,
    /// Audio codec/processor.
    Audio,
    /// Display controller.
    Display,
    /// Cellular/wireless modem.
    Modem,
    /// Crypto/security engine.
    Security,
    /// Fixed-function accelerator (FFT, codec, …).
    Accelerator,
    /// Peripheral I/O port (USB, UART, SPI, SDIO, …).
    Peripheral,
}

impl CoreKind {
    /// All kinds, for iteration in tests and generators.
    pub const ALL: [CoreKind; 15] = [
        CoreKind::Cpu,
        CoreKind::Dsp,
        CoreKind::Gpu,
        CoreKind::Cache,
        CoreKind::Dma,
        CoreKind::Memory,
        CoreKind::VideoDecoder,
        CoreKind::VideoEncoder,
        CoreKind::Imaging,
        CoreKind::Audio,
        CoreKind::Display,
        CoreKind::Modem,
        CoreKind::Security,
        CoreKind::Accelerator,
        CoreKind::Peripheral,
    ];
}

impl std::str::FromStr for CoreKind {
    type Err = String;

    /// Parses the kebab-case form [`CoreKind`]'s `Display` emits
    /// (`"video-decoder"`, `"cpu"`, …), so kinds round-trip through the
    /// scenario JSON format.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CoreKind::ALL
            .into_iter()
            .find(|k| k.to_string() == s)
            .ok_or_else(|| format!("unknown core kind '{s}'"))
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreKind::Cpu => "cpu",
            CoreKind::Dsp => "dsp",
            CoreKind::Gpu => "gpu",
            CoreKind::Cache => "cache",
            CoreKind::Dma => "dma",
            CoreKind::Memory => "memory",
            CoreKind::VideoDecoder => "video-decoder",
            CoreKind::VideoEncoder => "video-encoder",
            CoreKind::Imaging => "imaging",
            CoreKind::Audio => "audio",
            CoreKind::Display => "display",
            CoreKind::Modem => "modem",
            CoreKind::Security => "security",
            CoreKind::Accelerator => "accelerator",
            CoreKind::Peripheral => "peripheral",
        };
        f.write_str(s)
    }
}

/// Static description of one core (IP block) of the SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Human-readable instance name (unique within a spec).
    pub name: String,
    /// Functional category.
    pub kind: CoreKind,
    /// Silicon area of the core.
    pub area: Area,
    /// Active dynamic power of the core (used for system-power context).
    pub dyn_power: Power,
    /// The core's own clock (NIs convert to the island's NoC clock).
    pub clock: Frequency,
    /// `true` if the core must remain powered in every usage scenario
    /// (e.g. shared memories that any active core may address).
    pub always_on: bool,
}

impl CoreSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        kind: CoreKind,
        area_mm2: f64,
        dyn_power_mw: f64,
        clock_mhz: f64,
    ) -> Self {
        CoreSpec {
            name: name.into(),
            kind,
            area: Area::from_mm2(area_mm2),
            dyn_power: Power::from_mw(dyn_power_mw),
            clock: Frequency::from_mhz(clock_mhz),
            always_on: false,
        }
    }

    /// Marks the core as never-shutdown (builder style).
    pub fn always_on(mut self) -> Self {
        self.always_on = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_round_trips() {
        let id = CoreId::from_index(11);
        assert_eq!(id.index(), 11);
        assert_eq!(id.to_string(), "c11");
    }

    #[test]
    fn kind_display_is_kebab() {
        assert_eq!(CoreKind::VideoDecoder.to_string(), "video-decoder");
        assert_eq!(CoreKind::Cpu.to_string(), "cpu");
    }

    #[test]
    fn all_kinds_listed_once() {
        let mut seen = std::collections::HashSet::new();
        for k in CoreKind::ALL {
            assert!(seen.insert(format!("{k:?}")));
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn kind_round_trips_through_from_str() {
        for k in CoreKind::ALL {
            assert_eq!(k.to_string().parse::<CoreKind>(), Ok(k));
        }
        assert!("warp-drive".parse::<CoreKind>().is_err());
    }

    #[test]
    fn builder_sets_always_on() {
        let c = CoreSpec::new("sdram", CoreKind::Memory, 2.0, 30.0, 200.0).always_on();
        assert!(c.always_on);
        assert_eq!(c.kind, CoreKind::Memory);
        assert!((c.area.mm2() - 2.0).abs() < 1e-12);
    }
}
