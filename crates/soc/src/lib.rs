//! SoC benchmark specifications for the `vi-noc` workspace.
//!
//! The paper evaluates on a proprietary 26-core mobile/multimedia SoC plus
//! "a variety of SoC benchmarks". None of those inputs are public, so this
//! crate reconstructs them (see `DESIGN.md` §4): each benchmark is a
//! [`SocSpec`] — a set of [`CoreSpec`]s and point-to-point [`TrafficFlow`]s
//! with bandwidth and latency constraints — whose traffic *structure*
//! (hot CPU↔cache/memory flows, moderate media pipelines, light peripheral
//! traffic) matches the published descriptions.
//!
//! The crate also implements the two core→voltage-island assignment
//! strategies compared in the paper's Figures 2 and 3:
//!
//! * [`partition::logical_partition`] — groups cores by functionality
//!   (shared memories together in a never-shutdown island, CPUs with their
//!   caches, media pipeline together, …);
//! * [`partition::communication_partition`] — min-cut clustering of the core
//!   traffic graph, so heavily-communicating cores share an island.
//!
//! # Example
//!
//! ```
//! use vi_noc_soc::{benchmarks, partition};
//!
//! let soc = benchmarks::d26_mobile();
//! assert_eq!(soc.core_count(), 26);
//! let vi = partition::logical_partition(&soc, 4).unwrap();
//! assert_eq!(vi.island_count(), 4);
//! // The island holding the shared memories can never be shut down.
//! assert!(vi.always_on_islands().iter().any(|&a| a));
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
mod core;
mod flow;
mod generator;
pub mod partition;
mod spec;

pub use crate::core::{CoreId, CoreKind, CoreSpec};
pub use flow::{FlowId, TrafficFlow};
pub use generator::{generate_synthetic, SyntheticConfig};
pub use partition::{PartitionError, ViAssignment};
pub use spec::{SocSpec, SpecError};
