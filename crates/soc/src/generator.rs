//! Seeded synthetic SoC generator.
//!
//! Used by the scaling experiments (T3) and property tests: produces
//! arbitrary-size SoCs whose traffic has the same *structure* as the bundled
//! benchmarks — hub traffic into a few memories, hot processor↔cache pairs,
//! pipeline chains among media/accelerator cores and light peripheral flows.

use crate::core::{CoreKind, CoreSpec};
use crate::flow::TrafficFlow;
use crate::spec::SocSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`generate_synthetic`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Total number of cores (minimum 4).
    pub n_cores: usize,
    /// RNG seed; equal seeds give identical specs.
    pub seed: u64,
    /// Fraction of cores that are memories (at least one is created).
    pub memory_fraction: f64,
    /// Fraction of cores that are processors (CPU/DSP, each with a cache
    /// when the budget allows).
    pub compute_fraction: f64,
    /// Mean bandwidth of hot flows, MB/s.
    pub hot_bandwidth_mbps: f64,
    /// Mean bandwidth of background flows, MB/s.
    pub light_bandwidth_mbps: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_cores: 24,
            seed: 0xC0FFEE,
            memory_fraction: 0.12,
            compute_fraction: 0.35,
            hot_bandwidth_mbps: 700.0,
            light_bandwidth_mbps: 20.0,
        }
    }
}

/// Generates a synthetic SoC spec.
///
/// The result always validates, is fully traffic-connected, has at least one
/// always-on memory, and populates enough functional groups for logical
/// partitioning up to 4 islands.
///
/// # Panics
///
/// Panics if `cfg.n_cores < 4`.
pub fn generate_synthetic(cfg: &SyntheticConfig) -> SocSpec {
    assert!(cfg.n_cores >= 4, "need at least 4 cores");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut s = SocSpec::new(format!("synthetic_{}c_{}", cfg.n_cores, cfg.seed));

    let n = cfg.n_cores;
    let n_mem = ((n as f64 * cfg.memory_fraction).round() as usize).max(1);
    let n_cpu = ((n as f64 * cfg.compute_fraction / 2.0).round() as usize).max(1);
    let n_cache = n_cpu.min(n.saturating_sub(n_mem + n_cpu + 2));
    let n_media = ((n - n_mem - n_cpu - n_cache) / 2).max(1);
    let n_periph = n - n_mem - n_cpu - n_cache - n_media;

    let mut mems = Vec::new();
    for i in 0..n_mem {
        let core = CoreSpec::new(
            format!("mem{i}"),
            CoreKind::Memory,
            1.5 + rng.random::<f64>(),
            20.0 + rng.random::<f64>() * 20.0,
            266.0,
        );
        let core = if i == 0 { core.always_on() } else { core };
        mems.push(s.add_core(core));
    }
    let mut cpus = Vec::new();
    for i in 0..n_cpu {
        let kind = if i % 2 == 0 {
            CoreKind::Cpu
        } else {
            CoreKind::Dsp
        };
        cpus.push(s.add_core(CoreSpec::new(
            format!("proc{i}"),
            kind,
            1.5 + rng.random::<f64>(),
            40.0 + rng.random::<f64>() * 60.0,
            400.0,
        )));
    }
    let mut caches = Vec::new();
    for i in 0..n_cache {
        caches.push(s.add_core(CoreSpec::new(
            format!("cache{i}"),
            CoreKind::Cache,
            0.8,
            12.0 + rng.random::<f64>() * 8.0,
            400.0,
        )));
    }
    let media_kinds = [
        CoreKind::VideoDecoder,
        CoreKind::VideoEncoder,
        CoreKind::Imaging,
        CoreKind::Display,
        CoreKind::Audio,
        CoreKind::Accelerator,
    ];
    let mut media = Vec::new();
    for i in 0..n_media {
        media.push(s.add_core(CoreSpec::new(
            format!("media{i}"),
            media_kinds[i % media_kinds.len()],
            1.0 + rng.random::<f64>() * 2.0,
            25.0 + rng.random::<f64>() * 50.0,
            250.0,
        )));
    }
    let mut periphs = Vec::new();
    for i in 0..n_periph {
        periphs.push(s.add_core(CoreSpec::new(
            format!("periph{i}"),
            CoreKind::Peripheral,
            0.2 + rng.random::<f64>() * 0.4,
            2.0 + rng.random::<f64>() * 8.0,
            60.0,
        )));
    }

    let jitter = |rng: &mut StdRng, mean: f64| mean * (0.6 + 0.8 * rng.random::<f64>());

    // Hot processor <-> cache pairs; caches miss to a memory.
    for (i, &cpu) in cpus.iter().enumerate() {
        if let Some(&cache) = caches.get(i % n_cache.max(1)) {
            s.add_flow(TrafficFlow::new(
                cpu,
                cache,
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.6),
                12,
            ));
            s.add_flow(TrafficFlow::new(
                cache,
                cpu,
                jitter(&mut rng, cfg.hot_bandwidth_mbps),
                12,
            ));
            let mem = mems[i % n_mem];
            s.add_flow(TrafficFlow::new(
                cache,
                mem,
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.25),
                16,
            ));
            s.add_flow(TrafficFlow::new(
                mem,
                cache,
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.3),
                16,
            ));
        } else {
            // No cache budget: processor talks to memory directly.
            let mem = mems[i % n_mem];
            s.add_flow(TrafficFlow::new(
                cpu,
                mem,
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.4),
                14,
            ));
            s.add_flow(TrafficFlow::new(
                mem,
                cpu,
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.5),
                14,
            ));
        }
    }

    // Media pipeline chain + memory master.
    for (i, &m) in media.iter().enumerate() {
        let mem = mems[(i + 1) % n_mem];
        s.add_flow(TrafficFlow::new(
            mem,
            m,
            jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.35),
            18,
        ));
        s.add_flow(TrafficFlow::new(
            m,
            mem,
            jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.25),
            18,
        ));
        if i + 1 < media.len() {
            s.add_flow(TrafficFlow::new(
                m,
                media[i + 1],
                jitter(&mut rng, cfg.hot_bandwidth_mbps * 0.2),
                20,
            ));
        }
    }

    // Peripherals exchange light traffic with memory 0.
    for &p in &periphs {
        s.add_flow(TrafficFlow::new(
            p,
            mems[0],
            jitter(&mut rng, cfg.light_bandwidth_mbps),
            36,
        ));
        s.add_flow(TrafficFlow::new(
            mems[0],
            p,
            jitter(&mut rng, cfg.light_bandwidth_mbps),
            36,
        ));
    }

    // Memories exchange background refresh/copy traffic so the traffic graph
    // is connected even with several memories.
    for w in mems.windows(2) {
        s.add_flow(TrafficFlow::new(
            w[0],
            w[1],
            jitter(&mut rng, cfg.light_bandwidth_mbps * 3.0),
            24,
        ));
    }

    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_validate() {
        for n in [4usize, 8, 16, 32, 64, 128] {
            let cfg = SyntheticConfig {
                n_cores: n,
                ..SyntheticConfig::default()
            };
            let s = generate_synthetic(&cfg);
            assert_eq!(s.core_count(), n, "n={n}");
            s.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::default();
        assert_eq!(generate_synthetic(&cfg), generate_synthetic(&cfg));
        let other = SyntheticConfig {
            seed: 1,
            ..SyntheticConfig::default()
        };
        assert_ne!(generate_synthetic(&cfg), generate_synthetic(&other));
    }

    #[test]
    fn always_has_always_on_memory() {
        let s = generate_synthetic(&SyntheticConfig::default());
        assert!(s.cores().iter().any(|c| c.always_on));
    }

    #[test]
    fn traffic_graph_is_connected() {
        for seed in 0..5 {
            let s = generate_synthetic(&SyntheticConfig {
                seed,
                n_cores: 30,
                ..SyntheticConfig::default()
            });
            let g = s.traffic_graph();
            let mut seen = vec![false; g.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &(v, _) in g.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            assert!(seen.iter().all(|&x| x), "seed {seed} disconnected");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_configs() {
        generate_synthetic(&SyntheticConfig {
            n_cores: 3,
            ..SyntheticConfig::default()
        });
    }
}
