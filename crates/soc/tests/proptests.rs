//! Property-based tests for SoC specs and VI partitioning.

use proptest::prelude::*;
use vi_noc_soc::{generate_synthetic, partition, CoreId, SyntheticConfig};

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (4usize..48, 0u64..1000, 100.0f64..1200.0).prop_map(|(n_cores, seed, hot)| SyntheticConfig {
        n_cores,
        seed,
        hot_bandwidth_mbps: hot,
        ..SyntheticConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated spec validates and is internally consistent.
    #[test]
    fn generated_specs_are_valid(cfg in arb_config()) {
        let spec = generate_synthetic(&cfg);
        prop_assert_eq!(spec.core_count(), cfg.n_cores);
        prop_assert!(spec.validate().is_ok());
        prop_assert!(spec.flow_count() > 0);
        prop_assert!(spec.max_bandwidth().mbps() > 0.0);
        prop_assert!(spec.min_latency_cycles() > 0);
        // io bandwidth sums agree with the flow list.
        let mut in_sum = 0.0;
        let mut out_sum = 0.0;
        for c in spec.core_ids() {
            let (i, o) = spec.core_io_bandwidth(c);
            in_sum += i.mbps();
            out_sum += o.mbps();
        }
        let flow_sum: f64 = spec.flows().iter().map(|f| f.bandwidth.mbps()).sum();
        prop_assert!((in_sum - flow_sum).abs() < 1e-6);
        prop_assert!((out_sum - flow_sum).abs() < 1e-6);
    }

    /// Communication partitioning covers all cores with exactly k non-empty
    /// islands and always marks the always-on island.
    #[test]
    fn communication_partition_invariants(cfg in arb_config(), k in 1usize..6, seed in 0u64..100) {
        let spec = generate_synthetic(&cfg);
        let k = k.min(spec.core_count());
        let vi = partition::communication_partition(&spec, k, seed).unwrap();
        prop_assert_eq!(vi.island_count(), k);
        prop_assert_eq!(vi.assignment().len(), spec.core_count());
        // Every island holds at least one core.
        for isl in 0..k {
            prop_assert!(vi.island_size(isl) > 0, "island {isl} empty");
        }
        // Islands holding always-on cores are always-on.
        for c in spec.core_ids() {
            if spec.core(c).always_on {
                prop_assert!(!vi.can_shutdown(vi.island_of(c)));
            }
        }
        // cores_per_island is the inverse of island_of.
        for (isl, cores) in vi.cores_per_island().iter().enumerate() {
            for &c in cores {
                prop_assert_eq!(vi.island_of(c), isl);
            }
        }
    }

    /// The traffic graph is an exact symmetrization of the flow list.
    #[test]
    fn traffic_graph_matches_flows(cfg in arb_config()) {
        let spec = generate_synthetic(&cfg);
        let g = spec.traffic_graph();
        prop_assert_eq!(g.len(), spec.core_count());
        let graph_total = g.total_edge_weight();
        let flow_total: f64 = spec.flows().iter().map(|f| f.bandwidth.mbps()).sum();
        prop_assert!((graph_total - flow_total).abs() < 1e-6,
            "graph {graph_total} vs flows {flow_total}");
    }

    /// Logical partitioning at k=1 and k=n always works for generated SoCs.
    #[test]
    fn logical_extremes_always_supported(cfg in arb_config()) {
        let spec = generate_synthetic(&cfg);
        let one = partition::logical_partition(&spec, 1).unwrap();
        prop_assert!(one.assignment().iter().all(|&i| i == 0));
        let n = spec.core_count();
        let all = partition::logical_partition(&spec, n).unwrap();
        for c in 0..n {
            prop_assert_eq!(all.island_of(CoreId::from_index(c)), c);
        }
    }
}
