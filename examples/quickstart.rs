//! Quickstart: synthesize a shutdown-capable NoC for a bundled SoC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline once: pick a benchmark, assign cores to voltage
//! islands, run Algorithm 1, inspect the best design point, and verify the
//! shutdown-safety invariant.

use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, topology_summary, verify_design, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 26-core mobile SoC (the paper's case study).
    let soc = benchmarks::d26_mobile();
    println!(
        "SoC `{}`: {} cores, {} flows, {:.0} mW core power",
        soc.name(),
        soc.core_count(),
        soc.flow_count(),
        soc.total_core_dyn_power().mw()
    );

    // 2. Assign cores to 6 voltage islands by functionality. The island
    //    holding the shared memories can never be shut down.
    let vi = partition::logical_partition(&soc, 6)?;
    println!(
        "islands: {} ({} always-on)",
        vi.island_count(),
        vi.always_on_islands().iter().filter(|&&a| a).count()
    );

    // 3. Synthesize the design space (paper Algorithm 1).
    let space = synthesize(&soc, &vi, &SynthesisConfig::default())?;
    println!("feasible design points: {}", space.points.len());

    // 4. Pick the minimum-power point and inspect it.
    let best = space.min_power_point().expect("non-empty space");
    println!(
        "best point: {:.1} mW NoC dynamic power, {:.2} cycles avg latency, {} switches",
        best.metrics.noc_dynamic_power().mw(),
        best.metrics.avg_latency_cycles,
        best.metrics.switch_count
    );
    println!("\n{}", topology_summary(&soc, &vi, &best.topology));

    // 5. Verify: no route ever transits a third (gateable) island.
    let violations = verify_design(&soc, &vi, &best.topology, &SynthesisConfig::default());
    assert!(violations.is_empty(), "violations: {violations:?}");
    println!("shutdown-safety verification: clean");
    Ok(())
}
