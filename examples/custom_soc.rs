//! Bring your own SoC: describe cores and flows, partition, synthesize,
//! floorplan — the full flow on a design that is not bundled.
//!
//! ```sh
//! cargo run --release --example custom_soc
//! ```

use vi_noc::floorplan::FloorplanConfig;
use vi_noc::soc::{partition, CoreKind, CoreSpec, SocSpec, TrafficFlow};
use vi_noc::synth::{realize_on_floorplan, synthesize, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-core IoT camera SoC, built from scratch with the public API.
    let mut soc = SocSpec::new("iot_camera");
    let cpu = soc.add_core(CoreSpec::new("cpu", CoreKind::Cpu, 1.6, 55.0, 350.0));
    let cache = soc.add_core(CoreSpec::new("cache", CoreKind::Cache, 0.7, 11.0, 350.0));
    let isp = soc.add_core(CoreSpec::new("isp", CoreKind::Imaging, 1.8, 42.0, 220.0));
    let enc = soc.add_core(CoreSpec::new(
        "enc",
        CoreKind::VideoEncoder,
        2.0,
        48.0,
        220.0,
    ));
    let sram = soc.add_core(CoreSpec::new("sram", CoreKind::Memory, 1.5, 16.0, 300.0).always_on());
    let wifi = soc.add_core(CoreSpec::new("wifi", CoreKind::Modem, 1.4, 35.0, 200.0));
    let usb = soc.add_core(CoreSpec::new("usb", CoreKind::Peripheral, 0.5, 7.0, 60.0));
    let gpio = soc.add_core(CoreSpec::new("gpio", CoreKind::Peripheral, 0.2, 2.0, 50.0));

    soc.add_flow(TrafficFlow::new(cpu, cache, 500.0, 12));
    soc.add_flow(TrafficFlow::new(cache, cpu, 750.0, 12));
    soc.add_flow(TrafficFlow::new(cache, sram, 180.0, 16));
    soc.add_flow(TrafficFlow::new(sram, cache, 220.0, 16));
    soc.add_flow(TrafficFlow::new(isp, enc, 260.0, 20));
    soc.add_flow(TrafficFlow::new(isp, sram, 240.0, 20));
    soc.add_flow(TrafficFlow::new(enc, sram, 150.0, 20));
    soc.add_flow(TrafficFlow::new(sram, enc, 100.0, 20));
    soc.add_flow(TrafficFlow::new(sram, wifi, 140.0, 22));
    soc.add_flow(TrafficFlow::new(wifi, sram, 90.0, 22));
    soc.add_flow(TrafficFlow::new(usb, sram, 40.0, 32));
    soc.add_flow(TrafficFlow::new(sram, usb, 55.0, 32));
    soc.add_flow(TrafficFlow::new(gpio, cpu, 2.0, 40));
    soc.validate()?;

    // Islands by traffic clustering; 3 islands.
    let vi = partition::communication_partition(&soc, 3, 1)?;
    for (i, cores) in vi.cores_per_island().iter().enumerate() {
        let names: Vec<&str> = cores.iter().map(|&c| soc.core(c).name.as_str()).collect();
        println!(
            "island {i}{}: {}",
            if vi.can_shutdown(i) {
                ""
            } else {
                " (always-on)"
            },
            names.join(", ")
        );
    }

    // Synthesize and realize on a floorplan.
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg)?;
    let best = space.min_power_point().expect("non-empty");
    let realized = realize_on_floorplan(&soc, &vi, best, &FloorplanConfig::default(), &cfg);

    let (dw, dh) = realized.placement.die();
    println!(
        "\nsynthesized: {} switches, {} links; die {:.1} x {:.1} mm",
        best.metrics.switch_count, best.metrics.link_count, dw, dh
    );
    println!(
        "NoC power: {:.1} mW estimated -> {:.1} mW wire-accurate; area {:.2} mm^2",
        best.metrics.noc_dynamic_power().mw(),
        realized.metrics.noc_dynamic_power().mw(),
        realized.metrics.area.mm2()
    );
    println!(
        "worst flow latency: {} cycles; {} links miss timing",
        realized.metrics.max_latency_cycles,
        realized.infeasible_links.len()
    );
    Ok(())
}
