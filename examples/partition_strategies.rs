//! Logical vs communication-based islanding, side by side — the comparison
//! behind the paper's Figures 2 and 3, on any benchmark.
//!
//! ```sh
//! cargo run --release --example partition_strategies
//! ```

use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d36_tablet();
    let g = soc.traffic_graph();
    println!(
        "{}: {} cores, {} flows\n",
        soc.name(),
        soc.core_count(),
        soc.flow_count()
    );

    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "islands", "strategy", "cut (MB/s)", "power (mW)", "lat (cyc)", "crossings"
    );
    for k in [2usize, 4, 7] {
        for (label, vi) in [
            ("logical", partition::logical_partition(&soc, k).ok()),
            (
                "communication",
                partition::communication_partition(&soc, k, 11).ok(),
            ),
        ] {
            let Some(vi) = vi else {
                println!("{k:>8} {label:>14} {:>12}", "unsupported");
                continue;
            };
            // Bandwidth crossing island boundaries under this assignment.
            let mut cut = 0.0;
            for u in 0..g.len() {
                for &(v, w) in g.neighbors(u) {
                    if u < v && vi.assignment()[u] != vi.assignment()[v] {
                        cut += w;
                    }
                }
            }
            match synthesize(&soc, &vi, &SynthesisConfig::default()) {
                Ok(space) => {
                    let m = &space.min_power_point().expect("points").metrics;
                    println!(
                        "{:>8} {:>14} {:>12.0} {:>12.1} {:>12.2} {:>12}",
                        k,
                        label,
                        cut,
                        m.noc_dynamic_power().mw(),
                        m.avg_latency_cycles,
                        m.crossing_count
                    );
                }
                Err(e) => println!("{k:>8} {label:>14} {cut:>12.0} infeasible: {e}"),
            }
        }
    }
    println!(
        "\ncommunication-based islanding cuts less bandwidth, so fewer converter\n\
         crossings and lower latency — the effect behind Figures 2-3."
    );
    Ok(())
}
