//! Design-space exploration: the power/latency trade-off curve a designer
//! would pick from (paper §3.2), plus the effect of the intermediate island.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6)?;

    let space = synthesize(&soc, &vi, &SynthesisConfig::default())?;
    println!(
        "explored design points for {} at 6 islands: {}",
        soc.name(),
        space.points.len()
    );
    println!(
        "\n{:>6} {:>5} {:>12} {:>12} {:>10} {:>9}",
        "sweep", "mid", "power (mW)", "latency (cy)", "switches", "crossings"
    );
    for p in &space.points {
        println!(
            "{:>6} {:>5} {:>12.1} {:>12.2} {:>10} {:>9}",
            p.sweep_index,
            p.topology.intermediate_switch_count(),
            p.metrics.noc_dynamic_power().mw(),
            p.metrics.avg_latency_cycles,
            p.metrics.switch_count,
            p.metrics.crossing_count
        );
    }

    println!("\nPareto front (power vs latency):");
    for p in space.pareto_front() {
        println!(
            "  {:.1} mW  @  {:.2} cycles  ({} switches)",
            p.metrics.noc_dynamic_power().mw(),
            p.metrics.avg_latency_cycles,
            p.metrics.switch_count
        );
    }

    // Ablation: forbid the intermediate NoC island (paper §3.2 makes it
    // optional — "only if the resources are available").
    let cfg_no_mid = SynthesisConfig {
        allow_intermediate_vi: false,
        ..SynthesisConfig::default()
    };
    match synthesize(&soc, &vi, &cfg_no_mid) {
        Ok(no_mid) => println!(
            "\nwithout the intermediate island: {} points (vs {} with)",
            no_mid.points.len(),
            space.points.len()
        ),
        Err(e) => println!("\nwithout the intermediate island: infeasible ({e})"),
    }
    Ok(())
}
