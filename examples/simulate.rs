//! End-to-end dynamic validation: synthesize the D26 NoC, realize it on a
//! floorplan, simulate its traffic with the event-batched engine, and
//! power-gate an island mid-run.
//!
//! ```sh
//! cargo run --release --example simulate
//! ```
//!
//! Where `quickstart` stops at the analytic design-space numbers, this
//! example drives the flit-level simulator over the synthesized design: it
//! cross-checks measured latency and power against the analytic models and
//! then replays the paper's headline scenario — shutting down a voltage
//! island without disturbing the surviving islands' traffic.

use vi_noc::floorplan::FloorplanConfig;
use vi_noc::sim::{
    measured_power, run_shutdown_scenario, ShutdownScenario, SimConfig, Simulator, TrafficKind,
};
use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{realize_on_floorplan, synthesize, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize the design space for the paper's 26-core mobile SoC at
    //    6 voltage islands and keep the minimum-power point.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6)?;
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg)?;
    let point = space.min_power_point().expect("non-empty space");
    println!(
        "synthesized {} design points; min-power point: {} switches, {:.1} mW",
        space.points.len(),
        point.metrics.switch_count,
        point.metrics.noc_dynamic_power().mw()
    );

    // 2. Realize it on a floorplan: place cores island-cohesively, insert
    //    the switches, re-measure every wire.
    let realized = realize_on_floorplan(&soc, &vi, point, &FloorplanConfig::default(), &cfg);
    println!(
        "floorplan-realized: {:.1} mW with Manhattan wire lengths ({} link(s) need pipelining)",
        realized.metrics.noc_dynamic_power().mw(),
        realized.infeasible_links.len()
    );

    // 3. Simulate 200 µs of CBR traffic at 80 % load. The engine advances
    //    event-to-event (`SimConfig::batching`), so the long horizon is
    //    cheap; the stats are bit-identical to cycle-by-cycle stepping.
    let sim_cfg = SimConfig {
        traffic: TrafficKind::Cbr,
        load_factor: 0.8,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&soc, &realized.topology, &sim_cfg);
    let stats = sim.run_for_ns(200_000);
    println!(
        "simulated 200 us: {} packets delivered, avg latency {:.1} ns",
        stats.total_delivered_packets(),
        stats.avg_latency_ps().unwrap_or(0.0) / 1e3
    );

    // 4. Price the observed activity with the synthesis power models — the
    //    dynamic cross-check of the analytic numbers behind Figure 2.
    let measured = measured_power(&soc, &realized.topology, &cfg, &stats, 64.0);
    println!(
        "measured NoC power at 80% load: {:.1} mW (analytic full-load: {:.1} mW)",
        measured.fig2_power().mw(),
        realized.metrics.noc_dynamic_power().mw()
    );

    // 5. The headline property: gate a shutdown-capable island mid-run and
    //    verify the surviving islands' traffic never stalls.
    let island = (0..vi.island_count())
        .find(|&j| vi.can_shutdown(j))
        .expect("some island can shut down");
    let outcome = run_shutdown_scenario(
        &soc,
        &vi,
        &realized.topology,
        &sim_cfg,
        &ShutdownScenario {
            island,
            ..ShutdownScenario::default()
        },
    );
    println!(
        "island {island} gated: drained cleanly = {}, survivors delivered {} packets before \
         and {} after the gate",
        outcome.drained_cleanly, outcome.survivors_before, outcome.survivors_after
    );
    assert!(outcome.drained_cleanly);
    assert!(outcome.survivors_after >= outcome.survivors_before);
    println!("shutdown left surviving traffic undisturbed");
    Ok(())
}
