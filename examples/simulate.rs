//! End-to-end dynamic validation as a *data-driven* experiment: the
//! committed `scenarios/d26_baseline.json` declares the whole flow —
//! synthesize the D26 NoC, realize it on a floorplan, simulate CBR traffic
//! with the event-batched engine, power-gate an island mid-run, and sweep
//! the paper-equivalent design grid — and this example is now just a thin
//! wrapper that executes it through the unified [`vi_noc::Scenario`] API.
//!
//! ```sh
//! cargo run --release --example simulate
//! ```
//!
//! The same experiment runs without any Rust at all:
//!
//! ```sh
//! cargo run --release --bin vi-noc -- run scenarios/d26_baseline.json
//! ```

use vi_noc::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::from_json(include_str!("../scenarios/d26_baseline.json"))?;
    let report = scenario.run()?;
    print!("{}", report.summary());

    // The paper's headline property, as asserted by the old hand-chained
    // example: the gated island drains cleanly and the surviving islands'
    // traffic never stalls.
    let shutdown = report.shutdown.as_ref().expect("scenario gates an island");
    assert!(shutdown.outcome.drained_cleanly);
    assert!(shutdown.outcome.survivors_after >= shutdown.outcome.survivors_before);
    println!("shutdown left surviving traffic undisturbed");

    // The report (chosen design point, realized metrics, SimStats, sweep
    // frontier) serializes byte-deterministically — this is what
    // `vi-noc run --out report.json` writes and CI diffs against a golden.
    let json = report.to_json();
    assert_eq!(json, report.to_json());
    println!("report: {} bytes of deterministic JSON", json.len());
    Ok(())
}
