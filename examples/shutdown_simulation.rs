//! Shutdown demo: simulate the synthesized NoC, power-gate an island
//! mid-run, and show that traffic between the surviving islands never
//! notices — the property the whole paper exists to guarantee.
//!
//! ```sh
//! cargo run --release --example shutdown_simulation
//! ```

use vi_noc::sim::{run_shutdown_scenario, zero_load_cycles, ShutdownScenario, SimConfig};
use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6)?;
    let space = synthesize(&soc, &vi, &SynthesisConfig::default())?;
    let point = space.min_power_point().expect("non-empty space");

    println!("zero-load route latencies (cycles):");
    for fid in soc.flow_ids().take(6) {
        let f = soc.flow(fid);
        println!(
            "  {:>10} -> {:<10} {} cycles (constraint {})",
            soc.core(f.src).name,
            soc.core(f.dst).name,
            zero_load_cycles(&point.topology, fid).unwrap(),
            f.max_latency_cycles
        );
    }

    println!("\ngating each shutdown-capable island in turn:");
    for island in 0..vi.island_count() {
        if !vi.can_shutdown(island) {
            println!("  island {island}: always-on (shared memories) — skipped");
            continue;
        }
        let outcome = run_shutdown_scenario(
            &soc,
            &vi,
            &point.topology,
            &SimConfig::default(),
            &ShutdownScenario {
                island,
                stop_at_ns: 20_000,
                drain_ns: 8_000,
                post_gate_ns: 40_000,
            },
        );
        println!(
            "  island {island}: drained cleanly = {}, survivors delivered {} packets before \
             and {} after the gate",
            outcome.drained_cleanly, outcome.survivors_before, outcome.survivors_after
        );
        assert!(outcome.drained_cleanly);
        assert!(outcome.survivors_after >= outcome.survivors_before);
    }
    println!("\nall gateable islands shut down without disturbing foreign traffic");
    Ok(())
}
