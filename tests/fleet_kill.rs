//! Worker-death differential test at the process level: a real `vi-noc
//! fleet serve` coordinator, three real `vi-noc fleet work` processes, one
//! of them SIGKILL'd mid-lease — and the folded frontier file must still
//! be byte-identical to the single-process `sweep run --frontier` output
//! of the same scenario.
//!
//! This is the binary-boundary version of the in-process crash tests in
//! `crates/fleet/tests/fleet_exact.rs`: here the death is a genuine
//! SIGKILL of a child process, the sockets are real, and the comparison is
//! between files two different commands wrote.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

const VI_NOC: &str = env!("CARGO_BIN_EXE_vi-noc");

/// A small-but-not-trivial sweep: 160 range positions / ~40 leases at
/// `--lease-chunk 4`, so the kill lands mid-run with room to spare.
const SCENARIO: &str = r#"{"format":"vi-noc-scenario-v1",
"name":"fleet kill",
"spec":{"benchmark":"d12"},
"partition":{"kind":"logical","islands":4},
"synthesis":{"parallel":false},
"sweep":{"max_boost":1,"freq_scales":[1,1.1],"max_intermediate":2}
}
"#;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vi-noc-fleet-kill-{}-{name}", std::process::id()));
    p
}

/// Kills every child on drop so a failing assertion never leaks processes.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn a_sigkilled_worker_does_not_change_the_frontier_bytes() {
    let scenario = scratch("scenario.json");
    let addr_file = scratch("addr");
    let fleet_out = scratch("fleet.json");
    let ref_out = scratch("ref.json");
    let _ = std::fs::remove_file(&addr_file);
    std::fs::write(&scenario, SCENARIO).unwrap();

    // The unsharded reference frontier, via the plain sweep CLI.
    let status = Command::new(VI_NOC)
        .args(["sweep", "run", "--scenario"])
        .arg(&scenario)
        .args(["--frontier", "--out"])
        .arg(&ref_out)
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "reference sweep failed");

    // Coordinator on an ephemeral port; generous lease timeout so recovery
    // comes from the socket close (the SIGKILL signature), not the clock.
    let serve = Command::new(VI_NOC)
        .args(["fleet", "serve", "--scenario"])
        .arg(&scenario)
        .args(["--listen", "127.0.0.1:0", "--addr-file"])
        .arg(&addr_file)
        .arg("--out")
        .arg(&fleet_out)
        .args(["--lease-chunk", "4"])
        .args(["--checkpoint-every", "1"])
        .args(["--lease-timeout-ms", "60000"])
        .arg("--verbose")
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut serve = Reaper(vec![serve]);

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        match std::fs::read_to_string(&addr_file) {
            Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
            _ if Instant::now() > deadline => panic!("coordinator never wrote {addr_file:?}"),
            _ => thread::sleep(Duration::from_millis(20)),
        }
    };

    // Three throttled workers: each intra-lease ack costs ≥40 ms (the
    // throttle never sleeps lease-less), so the whole sweep takes seconds
    // and the kill below lands mid-lease.
    let mut workers = Reaper(
        (0..3)
            .map(|_| {
                Command::new(VI_NOC)
                    .args(["fleet", "work", "--connect", &addr])
                    .args(["--throttle-ms", "40"])
                    .stderr(Stdio::null())
                    .spawn()
                    .unwrap()
            })
            .collect(),
    );

    thread::sleep(Duration::from_millis(400));
    let doomed = &mut workers.0[0];
    doomed.kill().unwrap(); // SIGKILL — no goodbye on the socket
    doomed.wait().unwrap();

    let output = serve.0.pop().unwrap().wait_with_output().unwrap();
    let serve_log = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(output.status.success(), "fleet serve failed:\n{serve_log}");
    // The coordinator noticed the death and re-leased from the watermark.
    assert!(
        serve_log.contains("re-issued"),
        "no lease was re-issued — the kill missed every lease:\n{serve_log}"
    );
    // `--verbose` streams fleet metrics on every grant and fold.
    assert!(
        serve_log.contains("fleet: metrics leases_outstanding="),
        "--verbose emitted no metrics lines:\n{serve_log}"
    );
    assert!(
        serve_log.contains("deltas_folded=") && serve_log.contains("fold_lag_ms="),
        "metrics lines are missing fields:\n{serve_log}"
    );
    for worker in &mut workers.0[1..] {
        assert!(worker.wait().unwrap().success(), "survivor worker failed");
    }

    let fleet_bytes = std::fs::read(&fleet_out).unwrap();
    let ref_bytes = std::fs::read(&ref_out).unwrap();
    assert_eq!(
        fleet_bytes, ref_bytes,
        "fleet frontier differs from the unsharded reference"
    );

    for p in [&scenario, &addr_file, &fleet_out, &ref_out] {
        let _ = std::fs::remove_file(p);
    }
}
