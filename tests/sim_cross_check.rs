//! Cross-crate consistency: the simulator's measured behaviour must agree
//! with the synthesis-side analytic models.

use vi_noc::sim::{zero_load_cycles, zero_load_latency_ps, SimConfig, Simulator, TrafficKind};
use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, SynthesisConfig};

#[test]
fn analytic_cycles_match_route_metadata() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
    let topo = &space.min_power_point().unwrap().topology;
    // The sim crate's analytic zero-load cycles are exactly the synthesis
    // crate's stored route latencies (same model, two implementations).
    for fid in soc.flow_ids() {
        let sim_side = zero_load_cycles(topo, fid).unwrap();
        let synth_side = topo.route(fid).unwrap().latency_cycles;
        assert_eq!(sim_side, synth_side, "flow {fid}");
    }
}

#[test]
fn average_measured_latency_tracks_fig3_ordering() {
    // If the analytic Figure-3 says 6 islands is slower than 1 island, the
    // simulator must agree under light load.
    let soc = benchmarks::d12_auto();
    let measure = |k: usize| {
        let vi = partition::logical_partition(&soc, k).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        let cfg = SimConfig {
            load_factor: 0.3,
            traffic: TrafficKind::Poisson,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&soc, &topo, &cfg);
        sim.run_for_ns(150_000).avg_latency_ps().expect("delivered")
    };
    let one = measure(1);
    let four = measure(4);
    assert!(
        four > one,
        "4-island measured latency {four} ps <= 1-island {one} ps"
    );
}

#[test]
fn zero_load_ps_accounts_for_slow_domains() {
    // A flow whose route stays in a slow island must have a longer
    // picosecond latency than an equal-hop route in a fast island.
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
    let topo = &space.min_power_point().unwrap().topology;
    let mut by_cycles: std::collections::HashMap<u32, Vec<u64>> = Default::default();
    for fid in soc.flow_ids() {
        let cycles = zero_load_cycles(topo, fid).unwrap();
        let ps = zero_load_latency_ps(&soc, topo, fid).unwrap();
        by_cycles.entry(cycles).or_default().push(ps);
    }
    // Among same-cycle-count routes, picosecond latencies differ when clock
    // domains differ — domains matter, not just hop counts.
    let spread = by_cycles
        .values()
        .filter(|v| v.len() > 1)
        .any(|v| v.iter().max() != v.iter().min());
    assert!(spread, "all equal-cycle routes have identical ps latency");
}
