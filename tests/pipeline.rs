//! End-to-end pipeline integration tests: partition → synthesize → verify →
//! floorplan-realize → simulate, across the whole benchmark suite.

use vi_noc::floorplan::FloorplanConfig;
use vi_noc::sim::{SimConfig, Simulator};
use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{realize_on_floorplan, synthesize, verify_design, SynthesisConfig};

#[test]
fn full_pipeline_on_every_benchmark() {
    for (soc, k) in benchmarks::suite() {
        let vi =
            partition::logical_partition(&soc, k).unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        let best = space.min_power_point().expect("points");

        // Structural verification must be clean.
        let violations = verify_design(&soc, &vi, &best.topology, &cfg);
        assert!(violations.is_empty(), "{}: {violations:?}", soc.name());

        // Floorplan realization places everything and keeps power sane.
        let fp = FloorplanConfig {
            iterations: 4_000,
            ..FloorplanConfig::default()
        };
        let realized = realize_on_floorplan(&soc, &vi, best, &fp, &cfg);
        assert!(realized.placement.is_overlap_free(), "{}", soc.name());
        assert!(
            realized.metrics.noc_dynamic_power().mw() > 0.0,
            "{}",
            soc.name()
        );

        // A short simulation delivers traffic on the synthesized topology.
        let mut sim = Simulator::new(&soc, &best.topology, &SimConfig::default());
        let stats = sim.run_for_ns(20_000);
        assert!(
            stats.total_delivered_packets() > 0,
            "{}: nothing delivered",
            soc.name()
        );
    }
}

#[test]
fn communication_partitioning_pipeline() {
    for (soc, k) in benchmarks::suite() {
        let vi = partition::communication_partition(&soc, k, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        let best = space.min_power_point().expect("points");
        let violations = verify_design(&soc, &vi, &best.topology, &cfg);
        assert!(violations.is_empty(), "{}: {violations:?}", soc.name());
    }
}

#[test]
fn every_design_point_is_verified_not_just_the_best() {
    let soc = benchmarks::d16_settop();
    let vi = partition::logical_partition(&soc, 5).unwrap();
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg).unwrap();
    assert!(space.points.len() >= 2);
    for p in &space.points {
        let violations = verify_design(&soc, &vi, &p.topology, &cfg);
        assert!(
            violations.is_empty(),
            "sweep {} mid {}: {violations:?}",
            p.sweep_index,
            p.requested_intermediate
        );
    }
}

#[test]
fn oblivious_baseline_is_cheaper_but_unshieldable() {
    use vi_noc::synth::synthesize_oblivious;
    let soc = benchmarks::d26_mobile();
    let cfg = SynthesisConfig::default();
    let oblivious = synthesize_oblivious(&soc, &cfg).unwrap();
    let ref_power = oblivious
        .space
        .min_power_point()
        .unwrap()
        .metrics
        .noc_dynamic_power();

    let vi = partition::logical_partition(&soc, 6).unwrap();
    let space = synthesize(&soc, &vi, &cfg).unwrap();
    let vi_power = space.min_power_point().unwrap().metrics.noc_dynamic_power();

    // VI support costs power (that's the overhead T1 measures)...
    assert!(vi_power.mw() > ref_power.mw());
    // ...but the overhead is a small fraction of system power.
    let system = soc.total_core_dyn_power().mw() + ref_power.mw();
    assert!((vi_power.mw() - ref_power.mw()) / system < 0.08);
}
