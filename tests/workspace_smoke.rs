//! Workspace-level smoke test: the whole pipeline through the facade
//! crate, plus the parallel/sequential equivalence guarantee of the staged
//! synthesis driver.

use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, SynthesisConfig};

#[test]
fn quickstart_pipeline_produces_a_pareto_front() {
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).expect("4 logical islands");
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).expect("feasible design space");
    assert_eq!(space.island_count, 4);
    assert!(!space.points.is_empty());
    let front = space.pareto_front();
    assert!(!front.is_empty(), "Pareto front must not be empty");
    for point in front {
        assert!(point.metrics.noc_dynamic_power().mw() > 0.0);
        assert_eq!(point.topology.routes().count(), soc.flow_count());
    }
}

#[test]
fn parallel_and_sequential_design_spaces_are_identical() {
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).expect("4 logical islands");
    let sequential = synthesize(
        &soc,
        &vi,
        &SynthesisConfig {
            parallel: false,
            ..SynthesisConfig::default()
        },
    )
    .expect("sequential mode feasible");
    let parallel = synthesize(
        &soc,
        &vi,
        &SynthesisConfig {
            parallel: true,
            ..SynthesisConfig::default()
        },
    )
    .expect("parallel mode feasible");

    assert_eq!(sequential.spec_name, parallel.spec_name);
    assert_eq!(sequential.island_count, parallel.island_count);
    assert_eq!(sequential.points.len(), parallel.points.len());
    for (a, b) in sequential.points.iter().zip(&parallel.points) {
        assert_eq!(a.sweep_index, b.sweep_index);
        assert_eq!(a.requested_intermediate, b.requested_intermediate);
        assert_eq!(a.switch_counts, b.switch_counts);
        assert_eq!(a.topology, b.topology);
        assert_eq!(
            a.metrics.noc_dynamic_power().mw(),
            b.metrics.noc_dynamic_power().mw()
        );
        assert_eq!(a.metrics.avg_latency_cycles, b.metrics.avg_latency_cycles);
        assert_eq!(a.metrics.switch_count, b.metrics.switch_count);
    }
}
