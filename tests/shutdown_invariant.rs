//! Property-style integration tests of the headline invariant: synthesized
//! topologies always survive the shutdown of any gateable island — on random
//! synthetic SoCs, not just the curated benchmarks.

use vi_noc::sim::{run_shutdown_scenario, ShutdownScenario, SimConfig};
use vi_noc::soc::{generate_synthetic, partition, SyntheticConfig};
use vi_noc::synth::{synthesize, verify_shutdown_safety, SynthesisConfig};

#[test]
fn shutdown_safety_on_random_socs() {
    for seed in 0..8u64 {
        let soc = generate_synthetic(&SyntheticConfig {
            n_cores: 16 + (seed as usize % 3) * 8,
            seed,
            ..SyntheticConfig::default()
        });
        let k = 3 + (seed as usize % 3);
        let Ok(vi) = partition::communication_partition(&soc, k, seed) else {
            continue;
        };
        let Ok(space) = synthesize(&soc, &vi, &SynthesisConfig::default()) else {
            // Some random instances are legitimately infeasible (latency
            // constraints vs island structure); that is not a safety bug.
            continue;
        };
        for p in &space.points {
            let violations = verify_shutdown_safety(&soc, &vi, &p.topology);
            assert!(
                violations.is_empty(),
                "seed {seed} k {k} sweep {}: {violations:?}",
                p.sweep_index
            );
        }
    }
}

#[test]
fn simulated_gating_matches_static_verification() {
    // Where the static checker says "safe", the simulator must agree: gate
    // the island and watch survivors continue.
    let soc = generate_synthetic(&SyntheticConfig {
        n_cores: 20,
        seed: 5,
        ..SyntheticConfig::default()
    });
    let vi = partition::communication_partition(&soc, 4, 5).unwrap();
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
    let topo = &space.min_power_point().unwrap().topology;
    assert!(verify_shutdown_safety(&soc, &vi, topo).is_empty());

    for island in 0..vi.island_count() {
        if !vi.can_shutdown(island) {
            continue;
        }
        let outcome = run_shutdown_scenario(
            &soc,
            &vi,
            topo,
            &SimConfig::default(),
            &ShutdownScenario {
                island,
                stop_at_ns: 15_000,
                drain_ns: 8_000,
                post_gate_ns: 20_000,
            },
        );
        assert!(outcome.drained_cleanly, "island {island}");
    }
}

#[test]
fn intermediate_island_is_never_gateable() {
    // Topologies that use intermediate switches must keep routing through
    // them — the intermediate island is by definition always-on, so the
    // verifier never flags it.
    let soc = generate_synthetic(&SyntheticConfig {
        n_cores: 24,
        seed: 11,
        ..SyntheticConfig::default()
    });
    let vi = partition::communication_partition(&soc, 5, 2).unwrap();
    if let Ok(space) = synthesize(&soc, &vi, &SynthesisConfig::default()) {
        if let Some(p) = space
            .points
            .iter()
            .find(|p| p.topology.intermediate_switch_count() > 0)
        {
            assert!(verify_shutdown_safety(&soc, &vi, &p.topology).is_empty());
        }
    }
}
