//! Regression locks on the paper-figure shapes, at the integration level.
//! If a model or algorithm change breaks a qualitative claim of the
//! reproduction, these tests fail loudly.

use vi_noc::soc::{benchmarks, partition};
use vi_noc::synth::{synthesize, synthesize_oblivious, DesignPoint, SynthesisConfig};

fn best(soc: &vi_noc::soc::SocSpec, vi: &vi_noc::soc::ViAssignment) -> DesignPoint {
    synthesize(soc, vi, &SynthesisConfig::default())
        .expect("feasible")
        .min_power_point()
        .expect("points")
        .clone()
}

#[test]
fn fig2_communication_partitioning_dips_below_reference() {
    let soc = benchmarks::d26_mobile();
    let reference = {
        let vi = partition::logical_partition(&soc, 1).unwrap();
        best(&soc, &vi).metrics.power.fig2_power().mw()
    };
    let mut dipped = false;
    for k in 2..=5 {
        let vi = partition::communication_partition(&soc, k, 17).unwrap();
        let p = best(&soc, &vi).metrics.power.fig2_power().mw();
        dipped |= p < reference;
    }
    assert!(
        dipped,
        "communication partitioning never dipped below the 1-island reference"
    );
}

#[test]
fn fig2_logical_partitioning_pays_overhead() {
    let soc = benchmarks::d26_mobile();
    let reference = {
        let vi = partition::logical_partition(&soc, 1).unwrap();
        best(&soc, &vi).metrics.power.fig2_power().mw()
    };
    for k in [2usize, 4, 6] {
        let vi = partition::logical_partition(&soc, k).unwrap();
        let p = best(&soc, &vi).metrics.power.fig2_power().mw();
        assert!(p > reference, "k={k}: logical {p} <= reference {reference}");
    }
}

#[test]
fn fig3_latency_monotone_endpoints() {
    let soc = benchmarks::d26_mobile();
    let lat = |k: usize| {
        let vi = partition::logical_partition(&soc, k).unwrap();
        best(&soc, &vi).metrics.avg_latency_cycles
    };
    let one = lat(1);
    let six = lat(6);
    let max = lat(26);
    assert!(one < six && six <= max + 1e-9, "{one} {six} {max}");
    // The paper's curve starts near 3.5 cycles.
    assert!((2.5..4.5).contains(&one), "1-island latency {one}");
}

#[test]
fn t1_overhead_is_small_across_suite() {
    let cfg = SynthesisConfig::default();
    let mut power_sum = 0.0;
    let mut area_sum = 0.0;
    let mut n = 0.0;
    for (soc, k) in benchmarks::suite() {
        let oblivious = synthesize_oblivious(&soc, &cfg).unwrap();
        let r = oblivious.space.min_power_point().unwrap();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let v = best(&soc, &vi);
        let system = soc.total_core_dyn_power().mw() + r.metrics.noc_dynamic_power().mw();
        power_sum +=
            (v.metrics.noc_dynamic_power().mw() - r.metrics.noc_dynamic_power().mw()) / system;
        let soc_area = soc.total_core_area().mm2() + r.metrics.area.mm2();
        area_sum += (v.metrics.area.mm2() - r.metrics.area.mm2()) / soc_area;
        n += 1.0;
    }
    let avg_power = power_sum / n * 100.0;
    let avg_area = area_sum / n * 100.0;
    // Paper: ~3% power, <0.5% area. Lock at generous-but-meaningful bounds.
    assert!(
        avg_power > 0.0 && avg_power < 8.0,
        "avg power overhead {avg_power:.2}%"
    );
    assert!(avg_area < 1.0, "avg area overhead {avg_area:.2}%");
}

#[test]
fn t2_standby_recovers_big_leakage_share() {
    use vi_noc::synth::{scenario_power, standard_scenarios};
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let point = best(&soc, &vi);
    let cfg = SynthesisConfig::default();
    let standby = &standard_scenarios(&soc)[0];
    let r = scenario_power(&soc, &vi, &point.topology, &cfg, standby);
    assert!(
        r.savings_fraction() > 0.20,
        "standby saves only {:.1}%",
        r.savings_fraction() * 100.0
    );
}
