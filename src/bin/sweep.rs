//! The standalone `sweep` binary — a thin wrapper over the `vi-noc` CLI's
//! `sweep` subcommand ([`vi_noc_api::cli::sweep_cli`]), kept so existing
//! shard-farm invocations (`sweep run --shard 0/3 ...`) work unchanged.
//! Checkpoint and frontier files are byte-identical between the two entry
//! points.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vi_noc_api::cli::sweep_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!("{}", vi_noc_api::cli::SWEEP_USAGE);
            ExitCode::from(2)
        }
    }
}
