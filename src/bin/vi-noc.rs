//! The `vi-noc` CLI: run complete experiments — SoC spec → synthesis →
//! floorplan → simulation → shutdown → sweep — from JSON scenario files.
//!
//! ```text
//! vi-noc run      SCENARIO.json [--out report.json] [--frontier-out FILE]
//! vi-noc simulate SCENARIO.json [--out report.json]
//! vi-noc report   REPORT.json
//! vi-noc sweep    run|merge|info ...
//! vi-noc fleet    serve|work|run ...
//! vi-noc dynsweep run|check ...
//! ```
//!
//! The implementation lives in [`vi_noc_api::cli`]; see `scenarios/` for
//! committed example experiments.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vi_noc_api::cli::vi_noc_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vi-noc: {e}");
            eprintln!("{}", vi_noc_api::cli::USAGE);
            ExitCode::from(2)
        }
    }
}
