//! # vi-noc — NoC topology synthesis supporting shutdown of voltage islands
//!
//! Facade crate re-exporting the whole `vi-noc` workspace, a from-scratch
//! reproduction of *Seiculescu, Murali, Benini, De Micheli — "NoC Topology
//! Synthesis for Supporting Shutdown of Voltage Islands in SoCs", DAC 2009*.
//!
//! See the workspace `README.md` for an architecture overview and
//! `EXPERIMENTS.md` for the paper-vs-measured reproduction record.
//!
//! The sub-crates are re-exported under short module names:
//!
//! * [`graph`] — graph algorithms (min-cut partitioning, shortest paths).
//! * [`models`] — 65 nm power/area/timing models of NoC components.
//! * [`soc`] — SoC benchmark specs, traffic flows, VI partitioning.
//! * [`floorplan`] — slicing floorplanner with switch insertion.
//! * [`synth`] — the paper's VI-aware topology-synthesis algorithm.
//! * [`sim`] — cycle-level NoC simulator with shutdown scenarios.

pub use vi_noc_core as synth;
pub use vi_noc_floorplan as floorplan;
pub use vi_noc_graph as graph;
pub use vi_noc_models as models;
pub use vi_noc_sim as sim;
pub use vi_noc_soc as soc;
